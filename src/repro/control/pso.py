"""Vectorized particle swarm optimization (paper Section III, ref [14]).

The paper uses PSO to pick pole locations for the holistic controller.
This is a generic, deterministic (seeded) global-best PSO over a box;
the objective is evaluated on the whole swarm at once, which lets the
controller-design objective batch its closed-loop simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import ConfigurationError

#: Objective: maps particle positions ``(P, d)`` to values ``(P,)``.
BatchObjective = Callable[[np.ndarray], np.ndarray]

#: Fused objective: maps per-problem positions ``[(P, d_i), ...]`` to
#: per-problem values ``[(P,), ...]``.
ManyObjective = Callable[[list[np.ndarray]], list[np.ndarray]]


@dataclass(frozen=True)
class PsoOptions:
    """Swarm hyper-parameters (standard constricted values by default)."""

    n_particles: int = 24
    n_iterations: int = 30
    inertia: float = 0.72
    cognitive: float = 1.49
    social: float = 1.49
    velocity_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.n_particles < 2:
            raise ConfigurationError(
                f"need at least 2 particles, got {self.n_particles}"
            )
        if self.n_iterations < 1:
            raise ConfigurationError(
                f"need at least 1 iteration, got {self.n_iterations}"
            )
        if not 0 < self.velocity_fraction <= 1:
            raise ConfigurationError(
                f"velocity_fraction must be in (0, 1], got {self.velocity_fraction}"
            )


@dataclass
class PsoResult:
    """Outcome of a swarm run."""

    best_position: np.ndarray
    best_value: float
    n_evaluations: int
    history: list[float] = field(default_factory=list)


def pso_minimize(
    objective: BatchObjective,
    lower: np.ndarray,
    upper: np.ndarray,
    options: PsoOptions,
    rng: np.random.Generator,
    seeds: np.ndarray | None = None,
) -> PsoResult:
    """Minimize a batched objective over the box ``[lower, upper]``.

    Parameters
    ----------
    objective:
        Batched objective; must accept ``(P, d)`` and return ``(P,)``.
    lower, upper:
        Box bounds, shape ``(d,)`` each.
    options:
        Swarm hyper-parameters.
    rng:
        Random generator — passing it explicitly keeps every design
        deterministic and reproducible.
    seeds:
        Optional ``(k, d)`` array of seed positions injected into the
        initial swarm (clipped to the box).
    """
    lower = np.asarray(lower, dtype=float).reshape(-1)
    upper = np.asarray(upper, dtype=float).reshape(-1)
    if lower.shape != upper.shape or np.any(lower > upper):
        raise ConfigurationError("invalid PSO bounds")
    dim = lower.shape[0]
    span = upper - lower
    n = options.n_particles

    positions = lower + rng.random((n, dim)) * span
    if seeds is not None:
        seeds = np.atleast_2d(np.asarray(seeds, dtype=float))
        count = min(len(seeds), n)
        positions[:count] = np.clip(seeds[:count], lower, upper)
    velocity_cap = options.velocity_fraction * np.where(span > 0, span, 1.0)
    velocities = (rng.random((n, dim)) - 0.5) * velocity_cap

    values = np.asarray(objective(positions), dtype=float)
    if values.shape != (n,):
        raise ConfigurationError(
            f"objective must return shape ({n},), got {values.shape}"
        )
    best_positions = positions.copy()
    best_values = values.copy()
    g_index = int(np.argmin(best_values))
    history = [float(best_values[g_index])]
    evaluations = n

    for _ in range(options.n_iterations):
        r_cognitive = rng.random((n, dim))
        r_social = rng.random((n, dim))
        velocities = (
            options.inertia * velocities
            + options.cognitive * r_cognitive * (best_positions - positions)
            + options.social * r_social * (best_positions[g_index] - positions)
        )
        velocities = np.clip(velocities, -velocity_cap, velocity_cap)
        positions = np.clip(positions + velocities, lower, upper)
        values = np.asarray(objective(positions), dtype=float)
        evaluations += n
        improved = values < best_values
        best_positions[improved] = positions[improved]
        best_values[improved] = values[improved]
        g_index = int(np.argmin(best_values))
        history.append(float(best_values[g_index]))

    return PsoResult(
        best_position=best_positions[g_index].copy(),
        best_value=float(best_values[g_index]),
        n_evaluations=evaluations,
        history=history,
    )


@dataclass
class _SwarmState:
    """Per-problem swarm state of a lockstep :func:`pso_minimize_many`."""

    lower: np.ndarray
    upper: np.ndarray
    velocity_cap: np.ndarray
    rng: np.random.Generator
    positions: np.ndarray
    velocities: np.ndarray
    values: np.ndarray | None = None
    best_positions: np.ndarray | None = None
    best_values: np.ndarray | None = None
    g_index: int = 0
    history: list[float] = field(default_factory=list)


def pso_minimize_many(
    objective_many: ManyObjective,
    problems: list[tuple[np.ndarray, np.ndarray, np.random.Generator, np.ndarray | None]],
    options: PsoOptions,
) -> list[PsoResult]:
    """Run one swarm per problem in lockstep, sharing objective calls.

    Each problem is a ``(lower, upper, rng, seeds)`` tuple and follows
    exactly the trajectory :func:`pso_minimize` would give it alone —
    the same draws from its own ``rng`` and the same update arithmetic —
    but the objectives of every problem are evaluated through one fused
    ``objective_many`` call per iteration, so a batched objective can
    stack its numerical work across problems.  All problems share the
    swarm ``options`` (that is what keeps them in lockstep).
    """
    n = options.n_particles
    states: list[_SwarmState] = []
    for lower, upper, rng, seeds in problems:
        lower = np.asarray(lower, dtype=float).reshape(-1)
        upper = np.asarray(upper, dtype=float).reshape(-1)
        if lower.shape != upper.shape or np.any(lower > upper):
            raise ConfigurationError("invalid PSO bounds")
        dim = lower.shape[0]
        span = upper - lower
        positions = lower + rng.random((n, dim)) * span
        if seeds is not None:
            seeds = np.atleast_2d(np.asarray(seeds, dtype=float))
            count = min(len(seeds), n)
            positions[:count] = np.clip(seeds[:count], lower, upper)
        velocity_cap = options.velocity_fraction * np.where(span > 0, span, 1.0)
        velocities = (rng.random((n, dim)) - 0.5) * velocity_cap
        states.append(
            _SwarmState(lower, upper, velocity_cap, rng, positions, velocities)
        )

    def evaluate() -> None:
        values_list = objective_many([state.positions for state in states])
        for state, values in zip(states, values_list):
            values = np.asarray(values, dtype=float)
            if values.shape != (n,):
                raise ConfigurationError(
                    f"objective must return shape ({n},), got {values.shape}"
                )
            state.values = values

    evaluate()
    for state in states:
        state.best_positions = state.positions.copy()
        state.best_values = state.values.copy()
        state.g_index = int(np.argmin(state.best_values))
        state.history.append(float(state.best_values[state.g_index]))
    evaluations = n

    for _ in range(options.n_iterations):
        for state in states:
            dim = state.lower.shape[0]
            r_cognitive = state.rng.random((n, dim))
            r_social = state.rng.random((n, dim))
            state.velocities = (
                options.inertia * state.velocities
                + options.cognitive * r_cognitive
                * (state.best_positions - state.positions)
                + options.social * r_social
                * (state.best_positions[state.g_index] - state.positions)
            )
            state.velocities = np.clip(
                state.velocities, -state.velocity_cap, state.velocity_cap
            )
            state.positions = np.clip(
                state.positions + state.velocities, state.lower, state.upper
            )
        evaluate()
        evaluations += n
        for state in states:
            improved = state.values < state.best_values
            state.best_positions[improved] = state.positions[improved]
            state.best_values[improved] = state.values[improved]
            state.g_index = int(np.argmin(state.best_values))
            state.history.append(float(state.best_values[state.g_index]))

    return [
        PsoResult(
            best_position=state.best_positions[state.g_index].copy(),
            best_value=float(state.best_values[state.g_index]),
            n_evaluations=evaluations,
            history=state.history,
        )
        for state in states
    ]
