"""Vectorized particle swarm optimization (paper Section III, ref [14]).

The paper uses PSO to pick pole locations for the holistic controller.
This is a generic, deterministic (seeded) global-best PSO over a box;
the objective is evaluated on the whole swarm at once, which lets the
controller-design objective batch its closed-loop simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import ConfigurationError

#: Objective: maps particle positions ``(P, d)`` to values ``(P,)``.
BatchObjective = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class PsoOptions:
    """Swarm hyper-parameters (standard constricted values by default)."""

    n_particles: int = 24
    n_iterations: int = 30
    inertia: float = 0.72
    cognitive: float = 1.49
    social: float = 1.49
    velocity_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.n_particles < 2:
            raise ConfigurationError(
                f"need at least 2 particles, got {self.n_particles}"
            )
        if self.n_iterations < 1:
            raise ConfigurationError(
                f"need at least 1 iteration, got {self.n_iterations}"
            )
        if not 0 < self.velocity_fraction <= 1:
            raise ConfigurationError(
                f"velocity_fraction must be in (0, 1], got {self.velocity_fraction}"
            )


@dataclass
class PsoResult:
    """Outcome of a swarm run."""

    best_position: np.ndarray
    best_value: float
    n_evaluations: int
    history: list[float] = field(default_factory=list)


def pso_minimize(
    objective: BatchObjective,
    lower: np.ndarray,
    upper: np.ndarray,
    options: PsoOptions,
    rng: np.random.Generator,
    seeds: np.ndarray | None = None,
) -> PsoResult:
    """Minimize a batched objective over the box ``[lower, upper]``.

    Parameters
    ----------
    objective:
        Batched objective; must accept ``(P, d)`` and return ``(P,)``.
    lower, upper:
        Box bounds, shape ``(d,)`` each.
    options:
        Swarm hyper-parameters.
    rng:
        Random generator — passing it explicitly keeps every design
        deterministic and reproducible.
    seeds:
        Optional ``(k, d)`` array of seed positions injected into the
        initial swarm (clipped to the box).
    """
    lower = np.asarray(lower, dtype=float).reshape(-1)
    upper = np.asarray(upper, dtype=float).reshape(-1)
    if lower.shape != upper.shape or np.any(lower > upper):
        raise ConfigurationError("invalid PSO bounds")
    dim = lower.shape[0]
    span = upper - lower
    n = options.n_particles

    positions = lower + rng.random((n, dim)) * span
    if seeds is not None:
        seeds = np.atleast_2d(np.asarray(seeds, dtype=float))
        count = min(len(seeds), n)
        positions[:count] = np.clip(seeds[:count], lower, upper)
    velocity_cap = options.velocity_fraction * np.where(span > 0, span, 1.0)
    velocities = (rng.random((n, dim)) - 0.5) * velocity_cap

    values = np.asarray(objective(positions), dtype=float)
    if values.shape != (n,):
        raise ConfigurationError(
            f"objective must return shape ({n},), got {values.shape}"
        )
    best_positions = positions.copy()
    best_values = values.copy()
    g_index = int(np.argmin(best_values))
    history = [float(best_values[g_index])]
    evaluations = n

    for _ in range(options.n_iterations):
        r_cognitive = rng.random((n, dim))
        r_social = rng.random((n, dim))
        velocities = (
            options.inertia * velocities
            + options.cognitive * r_cognitive * (best_positions - positions)
            + options.social * r_social * (best_positions[g_index] - positions)
        )
        velocities = np.clip(velocities, -velocity_cap, velocity_cap)
        positions = np.clip(positions + velocities, lower, upper)
        values = np.asarray(objective(positions), dtype=float)
        evaluations += n
        improved = values < best_values
        best_positions[improved] = positions[improved]
        best_values[improved] = values[improved]
        g_index = int(np.argmin(best_values))
        history.append(float(best_values[g_index]))

    return PsoResult(
        best_position=best_positions[g_index].copy(),
        best_value=float(best_values[g_index]),
        n_evaluations=evaluations,
        history=history,
    )
