"""SISO pole placement via Ackermann's formula (paper Section III).

For the closed loop ``x[k+1] = (A + B K) x[k]`` with a *row* gain ``K``
(the paper's convention ``u = K x + F r``), Ackermann's formula places
the eigenvalues of ``A + B K`` at the desired locations:

``K = -e_l^T  Ctrb(A, B)^{-1}  phi(A)``

where ``phi`` is the desired characteristic polynomial and ``e_l`` the
last unit vector.
"""

from __future__ import annotations

import numpy as np

from ..errors import ControlError


def controllability_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Kalman controllability matrix ``[B, AB, ..., A^{l-1} B]``."""
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.asarray(b, dtype=float).reshape(-1)
    order = a.shape[0]
    columns = np.empty((order, order))
    column = b.copy()
    for i in range(order):
        columns[:, i] = column
        column = a @ column
    return columns


def _real_characteristic_coefficients(poles: np.ndarray) -> np.ndarray:
    """Coefficients of ``prod (z - p_i)``; poles must be conjugate-closed."""
    coefficients = np.poly(np.asarray(poles, dtype=complex))
    if np.abs(coefficients.imag).max() > 1e-8 * max(1.0, np.abs(coefficients).max()):
        raise ControlError(
            "desired poles must be closed under complex conjugation; "
            f"got {poles}"
        )
    return coefficients.real


def place_poles_siso(
    a: np.ndarray,
    b: np.ndarray,
    poles: np.ndarray,
    rcond: float = 1e-12,
) -> np.ndarray:
    """Row gain ``K`` such that ``eig(A + B K)`` equals ``poles``.

    Parameters
    ----------
    a, b:
        System matrix ``(l, l)`` and input vector ``(l,)``.
    poles:
        ``l`` desired eigenvalues, closed under conjugation.
    rcond:
        Conditioning threshold for the controllability matrix.

    Raises
    ------
    ControlError
        If the pair is (numerically) uncontrollable or the pole list has
        the wrong length / is not conjugate-closed.
    """
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.asarray(b, dtype=float).reshape(-1)
    order = a.shape[0]
    poles = np.asarray(poles, dtype=complex).reshape(-1)
    if poles.shape != (order,):
        raise ControlError(
            f"need exactly {order} poles for an order-{order} system, "
            f"got {poles.shape[0]}"
        )
    ctrb = controllability_matrix(a, b)
    scale = np.abs(ctrb).max()
    if scale == 0 or 1.0 / np.linalg.cond(ctrb) < rcond:
        raise ControlError("pair (A, B) is numerically uncontrollable")
    coefficients = _real_characteristic_coefficients(poles)
    # phi(A) = A^l + c_1 A^{l-1} + ... + c_l I
    phi = np.zeros_like(a)
    power = np.eye(order)
    for coefficient in coefficients[::-1]:
        phi += coefficient * power
        power = power @ a
    last_row = np.zeros(order)
    last_row[-1] = 1.0
    k_row = np.linalg.solve(ctrb.T, last_row)
    return -(k_row @ phi)
