"""Exact ZOH discretization, with and without input delay.

The schedule induces, per segment of length ``h``, either

* a *full-delay* segment (``tau == h``): the input computed at the
  segment's start takes effect exactly at its end, so the whole segment
  sees the previous input; or
* a *split* segment (``tau < h``): the previous input acts on
  ``[0, tau)`` and the new one on ``[tau, h)``.

Both are discretized exactly with the Van Loan augmented-exponential
construction — no numeric integration is involved.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import expm

from ..errors import ControlError


def zoh(a: np.ndarray, b: np.ndarray, h: float) -> tuple[np.ndarray, np.ndarray]:
    """Exact zero-order-hold discretization over a step of length ``h``.

    Returns ``(Ad, Gamma)`` with ``Ad = e^{A h}`` and
    ``Gamma = ∫_0^h e^{A s} ds · B``.
    """
    if h <= 0:
        raise ControlError(f"sampling period must be positive, got {h}")
    order = a.shape[0]
    augmented = np.zeros((order + 1, order + 1))
    augmented[:order, :order] = a
    augmented[:order, order] = b
    phi = expm(augmented * h)
    return phi[:order, :order], phi[:order, order]


def zoh_delayed(
    a: np.ndarray, b: np.ndarray, h: float, tau: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ZOH discretization of a segment with input switch at ``tau``.

    Over a segment of length ``h`` the previously-computed input
    ``u_prev`` is active on ``[0, tau)`` and the newly-computed input
    ``u_curr`` on ``[tau, h)``:

    ``x(h) = Ad x(0) + B1 u_prev + B2 u_curr``

    with ``Ad = e^{A h}``, ``B2 = Gamma(h - tau)`` and
    ``B1 = e^{A (h - tau)} Gamma(tau)``.  Limits: ``tau == h`` gives
    ``B1 = Gamma(h), B2 = 0`` (pure one-step delay); ``tau == 0`` gives
    ``B1 = 0, B2 = Gamma(h)`` (no delay).  ``B1 + B2 == Gamma(h)`` always
    (tested property).
    """
    if not 0 <= tau <= h:
        raise ControlError(f"delay must satisfy 0 <= tau <= h, got tau={tau} h={h}")
    ad, gamma_h = zoh(a, b, h)
    if tau == 0:
        return ad, np.zeros_like(gamma_h), gamma_h
    if tau == h:
        return ad, gamma_h, np.zeros_like(gamma_h)
    _, gamma_tau = zoh(a, b, tau)
    remainder = expm(a * (h - tau))
    b1 = remainder @ gamma_tau
    _, b2 = zoh(a, b, h - tau)
    return ad, b1, b2
