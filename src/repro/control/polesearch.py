"""Paper-literal design engine: PSO over lifted pole locations.

Section III of the paper places all ``m·l`` poles of the lifted matrix
``A_hol`` and computes the feedback gains with a "trivially extended"
Ackermann formula.  Because the gain structure is block-diagonal
(``K_j`` only multiplies ``x_j``), arbitrary pole placement is a
*nonlinear* problem; the natural extension of Ackermann's coefficient
matching is to solve

``coeffs(char_poly(A_hol(K_1..K_m))) = coeffs(prod (z - p_i))``

for the stacked gains — ``m·l`` polynomial equations in ``m·l``
unknowns — which we do with Levenberg–Marquardt, warm-started from a
per-segment Ackermann seed.  The outer PSO then searches the pole
locations themselves, exactly as the paper describes.

This engine is slower than the default ``hybrid`` engine and exists for
fidelity and for the A5 ablation (`benchmarks/bench_ablation_engine.py`).
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import least_squares

from ..errors import ControlError
from .lifted import lifted_closed_loop
from .pso import pso_minimize


def characteristic_coefficients(matrix: np.ndarray) -> np.ndarray:
    """Real coefficients of ``det(zI - matrix)`` (monic, descending)."""
    return np.poly(matrix).real


def poles_from_parameters(params: np.ndarray, dim: int) -> np.ndarray:
    """Map PSO parameters to ``dim`` poles inside the unit disk.

    Parameters are (magnitude, angle) per complex pair followed by a
    signed magnitude per leftover real pole.
    """
    poles = np.empty(dim, dtype=complex)
    n_pairs = dim // 2
    for i in range(n_pairs):
        magnitude = params[2 * i]
        angle = params[2 * i + 1]
        poles[2 * i] = magnitude * complex(math.cos(angle), math.sin(angle))
        poles[2 * i + 1] = poles[2 * i].conjugate()
    if dim % 2:
        poles[-1] = complex(params[-1], 0.0)
    return poles


def gains_for_poles(
    segments,
    desired_poles: np.ndarray,
    seed_gains: np.ndarray,
    max_nfev: int = 400,
) -> np.ndarray | None:
    """Solve the extended-Ackermann matching problem for ``desired_poles``.

    Returns stacked gains ``(m, l)`` whose lifted characteristic
    polynomial matches the desired one, or ``None`` when the nonlinear
    solve does not converge to a satisfactory residual.
    """
    m = len(segments)
    order = segments[0].ad.shape[0]
    target = np.poly(np.asarray(desired_poles, dtype=complex))
    if np.abs(target.imag).max() > 1e-8:
        raise ControlError("desired poles must be conjugate-closed")
    target = target.real
    zeros_f = np.zeros(m)

    def residual(flat: np.ndarray) -> np.ndarray:
        gains = flat.reshape(m, order)
        a_hol, _ = lifted_closed_loop(list(segments), gains, zeros_f)
        coefficients = characteristic_coefficients(a_hol)
        return coefficients[1:] - target[1:]

    scale = max(1.0, float(np.abs(target).max()))
    rng = np.random.default_rng(1)
    start = seed_gains.reshape(-1).astype(float)
    for attempt in range(4):
        # The Jacobian at degenerate seeds (e.g. all-zero gains) can be
        # singular; deterministic jitter recovers.
        x0 = start if attempt == 0 else start + rng.normal(
            scale=0.1 * (1.0 + np.abs(start)), size=start.shape
        )
        try:
            solution = least_squares(residual, x0, method="lm", max_nfev=max_nfev)
        except Exception:  # lint: allow-broad-except(LM can fail on pathological Jacobians; next seed retries)
            continue
        if not np.all(np.isfinite(solution.x)):
            continue
        if np.abs(residual(solution.x)).max() <= 1e-6 * scale:
            return solution.x.reshape(m, order)
    return None


def design_poles_engine(evaluator, options, rng: np.random.Generator):
    """Run the pole-space PSO engine on a prepared :class:`_GainEvaluator`.

    The lifted dimension is ``m·l`` for ``m >= 2`` and ``l + 1`` for
    ``m == 1`` (input augmentation); in the latter case only ``l`` gain
    degrees of freedom exist, so the match is least-squares rather than
    exact — the simulation-based objective judges the result either way.
    """
    from .design import ControllerDesign, _StageA  # late import to avoid a cycle

    m = evaluator.m
    order = evaluator.order
    dim = m * order if m >= 2 else order + 1

    # Warm-start gains from a quick stage-A sweep.
    stage_a = _StageA(evaluator, options)
    seed_theta = stage_a.default_seeds()[2]
    seed_gains = stage_a.gains_for(seed_theta)
    if seed_gains is None:
        seed_gains = np.zeros((m, order))

    lower = []
    upper = []
    for _ in range(dim // 2):
        lower += [0.01, 0.0]
        upper += [0.985, math.pi]
    if dim % 2:
        lower.append(-0.985)
        upper.append(0.985)
    lower = np.array(lower)
    upper = np.array(upper)

    cache: dict[bytes, np.ndarray | None] = {}

    def gains_of(params: np.ndarray) -> np.ndarray | None:
        key = params.tobytes()
        if key not in cache:
            poles = poles_from_parameters(params, dim)
            cache[key] = gains_for_poles(evaluator.segments, poles, seed_gains)
        return cache[key]

    def objective(batch: np.ndarray) -> np.ndarray:
        stacked = []
        bad = np.zeros(batch.shape[0], dtype=bool)
        for p in range(batch.shape[0]):
            gains = gains_of(batch[p])
            if gains is None:
                bad[p] = True
                stacked.append(np.zeros((m, order)))
            else:
                stacked.append(gains)
        values = evaluator.evaluate(np.stack(stacked))["objective"]
        values[bad] = 4.0 * evaluator.big
        return values

    result = pso_minimize(objective, lower, upper, options.stage_a, rng)
    best_gains = gains_of(result.best_position)
    if best_gains is None:
        best_gains = seed_gains
    final = evaluator.evaluate(best_gains[None])
    return ControllerDesign(
        gains=best_gains,
        feedforward=final["feedforward"][0],
        settling=float(final["settling"][0]),
        u_peak=float(final["u_peak"][0]),
        spectral_radius=float(final["rho"][0]),
        objective=float(final["objective"][0]),
        n_evaluations=evaluator.n_evaluations,
        engine="poles",
    )
