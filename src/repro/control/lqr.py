"""Quadratic-cost (LQR) design alternative.

The paper optimizes settling time and remarks it is "more difficult to
optimize than quadratic cost".  This module provides the quadratic-cost
end of that comparison: a discrete LQR design on the delay-augmented
average-period model, evaluated on the true switched timing.  It serves

* as a classical baseline for the ablation "settling-optimal vs
  LQR-optimal" (how much settling time the convenient quadratic
  surrogate gives away), and
* as a deterministic, swarm-free designer for quick studies.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_discrete_are

from ..errors import ControlError
from .design import ControllerDesign, TrackingSpec, _GainEvaluator
from .discretize import zoh_delayed
from .lifted import build_segments
from .lti import LtiPlant
from .simulate import build_simulation_plan


def lqr_gain_augmented(
    a: np.ndarray,
    b1: np.ndarray,
    b2: np.ndarray,
    c: np.ndarray,
    control_weight: float,
) -> np.ndarray:
    """LQR state gain for the delay-augmented model.

    The one-step-delay model ``x+ = A x + B1 u_prev + B2 u`` augments to
    ``z = (x, u_prev)`` with input ``u``; the stage cost is
    ``(C x)^2 + rho u^2``.  Returns the row gain on ``x`` only (the
    library's controller structure ``u = K x + F r`` has no ``u_prev``
    term, so the augmented gain's last entry is dropped — evaluated, as
    always, on the true switched simulation).
    """
    order = a.shape[0]
    a_aug = np.zeros((order + 1, order + 1))
    a_aug[:order, :order] = a
    a_aug[:order, order] = b1
    b_aug = np.zeros((order + 1, 1))
    b_aug[:order, 0] = b2
    b_aug[order, 0] = 1.0
    q = np.zeros((order + 1, order + 1))
    q[:order, :order] = np.outer(c, c)
    r = np.array([[control_weight]])
    try:
        p = solve_discrete_are(a_aug, b_aug, q, r)
    except (ValueError, np.linalg.LinAlgError) as exc:
        raise ControlError(f"discrete Riccati solve failed: {exc}") from exc
    gain = np.linalg.solve(
        r + b_aug.T @ p @ b_aug, b_aug.T @ p @ a_aug
    )[0]
    return -gain[:order]


def design_lqr(
    plant: LtiPlant,
    periods: list[float],
    delays: list[float],
    spec: TrackingSpec,
    control_weight: float = 1e-4,
    horizon_factor: float = 2.2,
    nsub: int = 4,
) -> ControllerDesign:
    """Deterministic LQR design for a schedule timing.

    One gain is computed on the average-period delay-augmented model and
    applied to every task (LQR has no native notion of the switched
    pattern); feedforward follows paper eq. (17).  The returned design
    carries the *true* switched-system settling time, input peak and
    spectral radius, so it is directly comparable with the holistic
    designs.
    """
    segments = build_segments(plant.a, plant.b, periods, delays)
    plan = build_simulation_plan(
        plant.a, plant.b, plant.c, periods, delays, nsub=nsub
    )
    horizon = horizon_factor * spec.deadline + plan.idle_gap
    evaluator = _GainEvaluator(plant, segments, plan, spec, horizon)

    m = len(segments)
    h_mean = sum(seg.h for seg in segments) / m
    tau_mean = min(sum(seg.tau for seg in segments) / m, h_mean)
    ad, b1, b2 = zoh_delayed(plant.a, plant.b, h_mean, tau_mean)
    k_row = lqr_gain_augmented(ad, b1, b2, plant.c, control_weight)
    gains = np.tile(k_row, (m, 1))

    result = evaluator.evaluate(gains[None])
    return ControllerDesign(
        gains=gains,
        feedforward=result["feedforward"][0],
        settling=float(result["settling"][0]),
        u_peak=float(result["u_peak"][0]),
        spectral_radius=float(result["rho"][0]),
        objective=float(result["objective"][0]),
        n_evaluations=evaluator.n_evaluations,
        engine="lqr",
    )


def sweep_control_weight(
    plant: LtiPlant,
    periods: list[float],
    delays: list[float],
    spec: TrackingSpec,
    weights: list[float],
) -> list[ControllerDesign]:
    """LQR designs across a control-weight sweep (aggressiveness knob)."""
    if not weights:
        raise ControlError("need at least one control weight")
    return [
        design_lqr(plant, periods, delays, spec, control_weight=w)
        for w in weights
    ]


def best_lqr(
    plant: LtiPlant,
    periods: list[float],
    delays: list[float],
    spec: TrackingSpec,
    weights: list[float] | None = None,
) -> ControllerDesign:
    """Best feasible LQR design over a default control-weight sweep.

    This is the fair "quadratic-cost surrogate" baseline: the weight is
    tuned (as a practitioner would) but the design target remains the
    quadratic cost, not settling time.
    """
    if weights is None:
        weights = list(np.logspace(-7, -1, 13))
    designs = sweep_control_weight(plant, periods, delays, spec, weights)
    feasible = [d for d in designs if d.satisfies(spec)]
    pool = feasible or designs
    return min(pool, key=lambda d: d.objective)
