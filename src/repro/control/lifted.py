"""Holistic lifted closed loop (paper Section III, generalized).

For an application that executes ``m`` consecutive tasks per schedule
hyperperiod, the sampled closed loop switches between ``m`` segment
dynamics.  Collecting the states at the ``m`` sampling instants of one
hyperperiod into ``z_t = (x_{t,1}, ..., x_{t,m})`` yields a single LTI
recursion ``z_t = A_hol z_{t-1} + G r`` — the paper's eq. (16) is the
``m = 2`` instance.  All ``m·l`` eigenvalues of ``A_hol`` are shaped by
the per-task gains ``K_1..K_m``.

For ``m = 1`` the previous input is not determined by any basis state,
so the lift augments it: ``z = (x, u_prev)`` with ``l + 1`` eigenvalues.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ControlError
from .discretize import zoh_delayed


@dataclass(frozen=True)
class Segment:
    """Discretized dynamics of one inter-sample segment.

    ``x_next = ad @ x + b1 * u_prev + b2 * u_curr`` where ``u_prev`` is
    the input computed at the *previous* sampling instant and ``u_curr``
    the one computed at the segment's own start.  For segments whose
    sensing-to-actuation delay equals the period, ``b2`` is zero.
    """

    h: float
    tau: float
    ad: np.ndarray
    b1: np.ndarray
    b2: np.ndarray

    @property
    def has_inner_actuation(self) -> bool:
        """Whether the segment's own input acts before the segment ends."""
        return bool(np.any(self.b2 != 0.0))


def build_segments(
    a: np.ndarray,
    b: np.ndarray,
    periods: list[float],
    delays: list[float],
) -> list[Segment]:
    """Discretize one hyperperiod of an application's timing pattern.

    Parameters
    ----------
    a, b:
        Continuous-time plant matrices.
    periods:
        Sampling periods ``h_i(1..m)`` of the schedule (paper eq. (6)).
    delays:
        Sensing-to-actuation delays ``tau_i(1..m)`` (paper eq. (8)); each
        must satisfy ``0 < tau <= h``.
    """
    if len(periods) != len(delays) or not periods:
        raise ControlError(
            "periods and delays must be equal-length and non-empty, "
            f"got {len(periods)} and {len(delays)}"
        )
    segments = []
    for h, tau in zip(periods, delays):
        if not 0 < tau <= h:
            raise ControlError(f"invalid segment timing: tau={tau}, h={h}")
        ad, b1, b2 = zoh_delayed(a, b, h, tau)
        segments.append(Segment(h, tau, ad, b1, b2))
    return segments


def feedforward_gain(
    c: np.ndarray, segment: Segment, k_row: np.ndarray
) -> float:
    """Static feedforward gain of one segment (paper eq. (11)/(17)).

    ``F = 1 / (C (I - A - B K)^{-1} B)`` with ``A = e^{A_c h}`` and
    ``B = Gamma(h) = b1 + b2`` of the segment.
    """
    b_full = segment.b1 + segment.b2
    order = segment.ad.shape[0]
    m = np.eye(order) - segment.ad - np.outer(b_full, k_row)
    try:
        solved = np.linalg.solve(m, b_full)
    except np.linalg.LinAlgError as exc:
        raise ControlError("segment closed loop has a pole at z = 1") from exc
    denominator = float(c @ solved)
    if abs(denominator) < 1e-12:
        raise ControlError("segment closed loop has zero DC gain")
    return 1.0 / denominator


def feedforward_gains(
    c: np.ndarray, segments: list[Segment], gains: np.ndarray
) -> np.ndarray:
    """Per-task feedforward gains ``F_1..F_m`` (paper eq. (17))."""
    gains = np.atleast_2d(np.asarray(gains, dtype=float))
    return np.array(
        [feedforward_gain(c, seg, gains[j]) for j, seg in enumerate(segments)]
    )


def lifted_closed_loop(
    segments: list[Segment],
    gains: np.ndarray,
    feedforward: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Build ``(A_hol, G)`` with ``z_t = A_hol z_{t-1} + G r``.

    Parameters
    ----------
    segments:
        The ``m`` segment dynamics of one hyperperiod, in order.
    gains:
        Row gains ``K_j``, shape ``(m, l)``.
    feedforward:
        Scalars ``F_j``, shape ``(m,)``.

    Returns
    -------
    (A_hol, G):
        For ``m >= 2``: shape ``(m·l, m·l)`` and ``(m·l,)``, basis
        ``z = (x_1, ..., x_m)`` (states at the m sampling instants).
        For ``m == 1``: shape ``(l+1, l+1)`` and ``(l+1,)``, basis
        ``z = (x, u_prev)``.
    """
    m = len(segments)
    gains = np.atleast_2d(np.asarray(gains, dtype=float))
    feedforward = np.asarray(feedforward, dtype=float).reshape(-1)
    if gains.shape[0] != m or feedforward.shape != (m,):
        raise ControlError(
            f"need {m} gain rows and feedforward scalars, "
            f"got {gains.shape} and {feedforward.shape}"
        )
    order = segments[0].ad.shape[0]

    if m == 1:
        seg = segments[0]
        k_row = gains[0]
        a_hol = np.zeros((order + 1, order + 1))
        a_hol[:order, :order] = seg.ad + np.outer(seg.b2, k_row)
        a_hol[:order, order] = seg.b1
        a_hol[order, :order] = k_row
        g = np.zeros(order + 1)
        g[:order] = seg.b2 * feedforward[0]
        g[order] = feedforward[0]
        return a_hol, g

    dim = m * order

    def block(j: int) -> slice:
        return slice(j * order, (j + 1) * order)

    # Linear expressions over the basis z_{t-1} = (x_{t-1,1..m}) plus r.
    # expr = (coeff matrix (order, dim), r vector (order,))
    basis: list[tuple[np.ndarray, np.ndarray]] = []
    for j in range(m):
        coeff = np.zeros((order, dim))
        coeff[:, block(j)] = np.eye(order)
        basis.append((coeff, np.zeros(order)))

    def input_expr(j: int, x_expr: tuple[np.ndarray, np.ndarray]):
        """u_{.,j} = K_j x + F_j r as (row over basis, scalar on r)."""
        coeff, rvec = x_expr
        return gains[j] @ coeff, gains[j] @ rvec + feedforward[j]

    u_prev_hp = [input_expr(j, basis[j]) for j in range(m)]

    new_exprs: list[tuple[np.ndarray, np.ndarray]] = []
    # Segment m (the long one) carries x_{t-1,m} into x_{t,1}: the input
    # u_{t-1,m-1} is active until tau_m, then u_{t-1,m}.
    seg_long = segments[m - 1]
    coeff_m, rvec_m = basis[m - 1]
    u_before = u_prev_hp[m - 2]
    u_after = u_prev_hp[m - 1]
    coeff = (
        seg_long.ad @ coeff_m
        + np.outer(seg_long.b1, u_before[0])
        + np.outer(seg_long.b2, u_after[0])
    )
    rvec = (
        seg_long.ad @ rvec_m
        + seg_long.b1 * u_before[1]
        + seg_long.b2 * u_after[1]
    )
    new_exprs.append((coeff, rvec))

    # Segments 1..m-1 propagate within hyperperiod t.  Segment j maps
    # x_{t,j} to x_{t,j+1}; the active input is u_{t-1,m} for j = 1 and
    # u_{t,j-1} for j >= 2.  (b2 of these segments is zero: tau == h.)
    new_inputs: list[tuple[np.ndarray, float]] = [input_expr(0, new_exprs[0])]
    for j in range(m - 1):
        seg = segments[j]
        coeff_j, rvec_j = new_exprs[j]
        active = u_prev_hp[m - 1] if j == 0 else new_inputs[j - 1]
        coeff = seg.ad @ coeff_j + np.outer(seg.b1, active[0])
        rvec = seg.ad @ rvec_j + seg.b1 * active[1]
        if seg.has_inner_actuation:
            own = new_inputs[j]
            coeff += np.outer(seg.b2, own[0])
            rvec += seg.b2 * own[1]
        new_exprs.append((coeff, rvec))
        if j + 1 < m:
            new_inputs.append(input_expr(j + 1, new_exprs[j + 1]))

    a_hol = np.zeros((dim, dim))
    g = np.zeros(dim)
    for j, (coeff, rvec) in enumerate(new_exprs):
        a_hol[block(j), :] = coeff
        g[block(j)] = rvec
    return a_hol, g


def spectral_radius(matrix: np.ndarray) -> float:
    """Largest eigenvalue magnitude (stability iff < 1)."""
    return float(np.abs(np.linalg.eigvals(matrix)).max())


def lifted_steady_state(a_hol: np.ndarray, g: np.ndarray, r: float) -> np.ndarray:
    """Fixed point ``z* = (I - A_hol)^{-1} G r`` of the lifted recursion."""
    dim = a_hol.shape[0]
    try:
        return np.linalg.solve(np.eye(dim) - a_hol, g * r)
    except np.linalg.LinAlgError as exc:
        raise ControlError("lifted closed loop has a pole at z = 1") from exc
