"""Trajectory-based control performance metrics.

The settling-time computation used *inside* design searches is the
batched one in :mod:`repro.control.simulate`; the functions here operate
on recorded trajectories and are used for reporting, plotting and
cross-checks, plus alternative metrics (quadratic cost, overshoot) for
the extension experiments.
"""

from __future__ import annotations

import numpy as np

from ..errors import ControlError


def settling_time_of_trajectory(
    times: np.ndarray,
    outputs: np.ndarray,
    r: float,
    band: float,
) -> float:
    """Last instant the output is outside ``[r - band, r + band]``.

    Returns ``inf`` when the trajectory is still outside the band at its
    final sample (settling cannot be certified), and ``0.0`` when it
    never leaves the band.
    """
    times = np.asarray(times, dtype=float).reshape(-1)
    outputs = np.asarray(outputs, dtype=float).reshape(-1)
    if times.shape != outputs.shape or times.size == 0:
        raise ControlError("times and outputs must be equal-length and non-empty")
    violating = np.abs(outputs - r) > band
    if not violating.any():
        return 0.0
    last = float(times[violating].max())
    if last >= float(times[-1]):
        return float("inf")
    return last


def overshoot(outputs: np.ndarray, y0: float, r: float) -> float:
    """Relative overshoot of a step response from ``y0`` to ``r``.

    Defined as ``max(y - r, 0) / |r - y0|`` for an upward step (and
    symmetrically for a downward step); 0 when the step has zero size.
    """
    outputs = np.asarray(outputs, dtype=float).reshape(-1)
    step = r - y0
    if step == 0:
        return 0.0
    if step > 0:
        beyond = float(np.max(outputs - r, initial=0.0))
    else:
        beyond = float(np.max(r - outputs, initial=0.0))
    return max(beyond, 0.0) / abs(step)


def quadratic_cost(
    times: np.ndarray,
    outputs: np.ndarray,
    r: float,
    inputs: np.ndarray | None = None,
    input_weight: float = 0.0,
) -> float:
    """Integral quadratic tracking cost ``∫ (y - r)^2 dt (+ rho ∫ u^2 dt)``.

    The paper optimizes settling time and notes it is *harder* than
    quadratic cost; this metric is provided for comparison experiments.
    Integration is trapezoidal over the (possibly non-uniform) grid.
    """
    times = np.asarray(times, dtype=float).reshape(-1)
    outputs = np.asarray(outputs, dtype=float).reshape(-1)
    if times.shape != outputs.shape or times.size < 2:
        raise ControlError("need at least two samples for the quadratic cost")
    cost = float(np.trapezoid((outputs - r) ** 2, times))
    if inputs is not None and input_weight > 0.0:
        inputs = np.asarray(inputs, dtype=float).reshape(-1)
        if inputs.shape != times.shape:
            raise ControlError("inputs must align with times")
        cost += input_weight * float(np.trapezoid(inputs ** 2, times))
    return cost


def steady_state_error(outputs: np.ndarray, r: float, tail_fraction: float = 0.1) -> float:
    """Mean absolute error over the trailing ``tail_fraction`` of samples."""
    outputs = np.asarray(outputs, dtype=float).reshape(-1)
    if not 0 < tail_fraction <= 1:
        raise ControlError(f"tail_fraction must be in (0, 1], got {tail_fraction}")
    tail = max(1, int(round(outputs.size * tail_fraction)))
    return float(np.mean(np.abs(outputs[-tail:] - r)))
