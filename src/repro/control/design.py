"""Holistic controller design for a given schedule timing (Section III).

Given the non-uniform sampling periods and sensing-to-actuation delays a
schedule induces for one application, find per-task gains
``u_j = K_j x + F_j r`` minimizing the worst-case settling time subject
to closed-loop stability (all eigenvalues of the lifted ``A_hol`` inside
the unit circle) and input saturation ``|u| <= U_max``.

Design engines
--------------
``hybrid`` (default)
    Stage A searches a low-dimensional, well-scaled space of
    continuous-time pole targets (natural frequency / damping per pole
    pair), realized per task by Ackermann placement on the segment
    dynamics; stage B then runs PSO directly over all ``m·l`` gain
    entries around the stage-A optimum.  This mirrors the paper's
    PSO-over-pole-locations + Ackermann scheme while keeping the search
    robustly scaled.
``seeded``
    Stage A only (fast; used by tests and quick sweeps).
``uniform``
    Non-holistic baseline for the ablation: one gain designed for the
    *average* sampling period and reused for every task — the design
    style the paper's holistic method improves upon.
``poles``
    Paper-literal engine: PSO over the ``m·l`` lifted pole locations
    with gains recovered by characteristic-polynomial matching
    (see :mod:`repro.control.polesearch`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import ControlError, DesignInfeasibleError
from .ackermann import place_poles_siso
from .lifted import Segment, build_segments, lifted_closed_loop
from .lti import LtiPlant
from .pso import PsoOptions, pso_minimize
from .simulate import SimulationPlan, build_simulation_plan, simulate_tracking


@dataclass(frozen=True)
class TrackingSpec:
    """Reference-tracking scenario and constraints for one application.

    Parameters
    ----------
    r:
        Reference value after the step.
    y0:
        Output value before the step (tracking starts from the matching
        equilibrium).
    u_max:
        Input saturation bound (paper constraint ``u[k] <= U_max``).
    deadline:
        Settling deadline ``s_max`` (normalization reference ``s0``).
    band_fraction:
        Relative settling band; the paper's example is 2 % around ``r``.
    """

    r: float
    y0: float
    u_max: float
    deadline: float
    band_fraction: float = 0.02

    @property
    def band(self) -> float:
        """Absolute settling band around the reference."""
        reference = abs(self.r)
        if reference == 0.0:
            reference = abs(self.r - self.y0)
        if reference == 0.0:
            raise ControlError("tracking spec has zero reference and zero step")
        return self.band_fraction * reference


@dataclass(frozen=True)
class DesignOptions:
    """Knobs of the holistic design search.

    ``restarts`` independent swarm runs (deterministically seeded from
    ``seed``) are performed and the best design kept; the settling-time
    landscape is multi-modal (settling quantizes to "idle gap + k
    samples" plateaus), so restarts matter for an honest comparison
    between schedules.
    """

    engine: str = "hybrid"
    nsub: int = 4
    horizon_factor: float = 2.2
    stage_a: PsoOptions = field(default_factory=lambda: PsoOptions(20, 25))
    stage_b: PsoOptions = field(default_factory=lambda: PsoOptions(28, 35))
    seed: int = 2018
    restarts: int = 3
    min_damping: float = 0.35
    max_damping: float = 1.4


@dataclass
class ControllerDesign:
    """Result of a holistic design for one application and timing."""

    gains: np.ndarray         # (m, l)
    feedforward: np.ndarray   # (m,)
    settling: float
    u_peak: float
    spectral_radius: float
    objective: float
    n_evaluations: int
    engine: str

    @property
    def stable(self) -> bool:
        """Whether the lifted closed loop is Schur stable."""
        return self.spectral_radius < 1.0

    def satisfies(self, spec: TrackingSpec) -> bool:
        """Stability + saturation + finite settling (not the deadline)."""
        return self.stable and self.u_peak <= spec.u_max and math.isfinite(self.settling)

    def performance(self, spec: TrackingSpec) -> float:
        """Paper eq. (2) term: ``1 - s / s0`` (negative when late)."""
        if not math.isfinite(self.settling):
            return -1.0
        return 1.0 - self.settling / spec.deadline

    def to_dict(self) -> dict:
        """JSON-serializable form (used by the persistent search cache).

        Floats round-trip exactly through ``repr`` so a deserialized
        design is numerically identical to the computed one.
        """
        return {
            "gains": self.gains.tolist(),
            "feedforward": self.feedforward.tolist(),
            "settling": self.settling,
            "u_peak": self.u_peak,
            "spectral_radius": self.spectral_radius,
            "objective": self.objective,
            "n_evaluations": self.n_evaluations,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ControllerDesign":
        """Inverse of :meth:`to_dict`."""
        return cls(
            gains=np.asarray(data["gains"], dtype=float),
            feedforward=np.asarray(data["feedforward"], dtype=float),
            settling=float(data["settling"]),
            u_peak=float(data["u_peak"]),
            spectral_radius=float(data["spectral_radius"]),
            objective=float(data["objective"]),
            n_evaluations=int(data["n_evaluations"]),
            engine=str(data["engine"]),
        )


class _GainEvaluator:
    """Batched objective: gains -> penalized worst-case settling."""

    def __init__(
        self,
        plant: LtiPlant,
        segments: list[Segment],
        plan: SimulationPlan,
        spec: TrackingSpec,
        horizon: float,
    ) -> None:
        self.plant = plant
        self.segments = segments
        self.plan = plan
        self.spec = spec
        self.horizon = horizon
        self.m = len(segments)
        self.order = plant.order
        x_eq, u_eq = plant.equilibrium(spec.y0)
        self.x0 = x_eq
        self.u0 = u_eq
        self.n_evaluations = 0
        # Penalty scales: large enough to dominate any real settling time
        # but graded so the swarm can descend toward feasibility.
        self.big = 50.0 * spec.deadline
        # Per-segment (I - Ad) and Gamma for feedforward computation.
        eye = np.eye(self.order)
        self._ff_a = np.stack([eye - seg.ad for seg in segments])       # (m,l,l)
        self._ff_b = np.stack([seg.b1 + seg.b2 for seg in segments])    # (m,l)

    def feedforward_batch(self, gains: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Paper eq. (17) for a batch: returns ``(F, invalid_mask)``."""
        n_batch = gains.shape[0]
        f_out = np.zeros((n_batch, self.m))
        invalid = np.zeros(n_batch, dtype=bool)
        c = self.plant.c
        for j in range(self.m):
            # M_p = I - Ad_j - Gamma_j K_jp  for every particle p
            mats = self._ff_a[j][None, :, :] - np.einsum(
                "l,pk->plk", self._ff_b[j], gains[:, j, :]
            )
            dets = np.linalg.det(mats)
            bad = np.abs(dets) < 1e-12
            safe = mats.copy()
            safe[bad] = np.eye(self.order)
            solved = np.linalg.solve(safe, np.broadcast_to(
                self._ff_b[j], (n_batch, self.order)
            )[..., None])[..., 0]
            denom = solved @ c
            bad |= np.abs(denom) < 1e-12
            f_out[:, j] = np.where(bad, 0.0, 1.0 / np.where(bad, 1.0, denom))
            invalid |= bad
        return f_out, invalid

    def spectral_radii(self, gains: np.ndarray, feedforward: np.ndarray) -> np.ndarray:
        """Spectral radius of ``A_hol`` for every particle."""
        radii = np.empty(gains.shape[0])
        for p in range(gains.shape[0]):
            a_hol, _ = lifted_closed_loop(self.segments, gains[p], feedforward[p])
            radii[p] = np.abs(np.linalg.eigvals(a_hol)).max()
        return radii

    def evaluate(self, gains: np.ndarray) -> dict[str, np.ndarray]:
        """Objective and diagnostics for a batch of gain sets."""
        gains = np.asarray(gains, dtype=float)
        if gains.ndim == 2:
            gains = gains[None]
        self.n_evaluations += gains.shape[0]
        feedforward, invalid = self.feedforward_batch(gains)
        radii = self.spectral_radii(gains, feedforward)
        tracking = simulate_tracking(
            self.plan,
            gains,
            feedforward,
            r=self.spec.r,
            x0=self.x0,
            u0=self.u0,
            horizon=self.horizon,
            band=self.spec.band,
        )
        settling = tracking.settling
        u_peak = tracking.u_peak

        objective = np.where(np.isfinite(settling), settling, self.big)
        unstable = radii >= 1.0
        objective = objective + np.where(
            unstable, self.big * (1.0 + np.minimum(radii - 1.0, 10.0)), 0.0
        )
        saturated = u_peak > self.spec.u_max
        with np.errstate(divide="ignore", invalid="ignore"):
            excess = np.where(
                saturated, np.minimum(u_peak / self.spec.u_max - 1.0, 100.0), 0.0
            )
        objective = objective + np.where(
            saturated, 0.2 * self.big * (1.0 + excess), 0.0
        )
        objective = objective + np.where(invalid, 2.0 * self.big, 0.0)
        return {
            "objective": objective,
            "settling": settling,
            "u_peak": u_peak,
            "rho": radii,
            "feedforward": feedforward,
            "invalid": invalid,
        }


def _continuous_poles(theta: np.ndarray, order: int) -> np.ndarray:
    """Map stage-A parameters to ``order`` continuous-time poles.

    ``theta`` holds (wn, zeta) per complex pair followed by one decay
    rate per leftover real pole.
    """
    poles = np.empty(order, dtype=complex)
    n_pairs = order // 2
    for i in range(n_pairs):
        wn = theta[2 * i]
        zeta = theta[2 * i + 1]
        if zeta < 1.0:
            wd = wn * math.sqrt(1.0 - zeta * zeta)
            poles[2 * i] = complex(-zeta * wn, wd)
            poles[2 * i + 1] = complex(-zeta * wn, -wd)
        else:
            spread = wn * math.sqrt(zeta * zeta - 1.0)
            poles[2 * i] = complex(-zeta * wn + spread, 0.0)
            poles[2 * i + 1] = complex(-zeta * wn - spread, 0.0)
    if order % 2:
        poles[-1] = complex(-theta[-1], 0.0)
    return poles


class _StageA:
    """Pole-target parametrization: theta -> per-task Ackermann gains."""

    def __init__(self, evaluator: _GainEvaluator, options: DesignOptions) -> None:
        self.evaluator = evaluator
        self.options = options
        self.order = evaluator.order
        self.m = evaluator.m
        hyper = sum(seg.h for seg in evaluator.segments)
        h_mean = hyper / self.m
        self.w_min = 0.25 / evaluator.spec.deadline
        self.w_max = math.pi / h_mean
        lower = []
        upper = []
        for _ in range(self.order // 2):
            lower += [self.w_min, options.min_damping]
            upper += [self.w_max, options.max_damping]
        if self.order % 2:
            lower.append(self.w_min)
            upper.append(self.w_max)
        self.lower = np.array(lower)
        self.upper = np.array(upper)

    def gains_for(self, theta: np.ndarray) -> np.ndarray | None:
        """Per-task gains realizing the pole targets, or ``None``."""
        poles_ct = _continuous_poles(theta, self.order)
        gains = np.empty((self.m, self.order))
        for j, seg in enumerate(self.evaluator.segments):
            desired = np.exp(poles_ct * seg.h)
            try:
                gains[j] = place_poles_siso(seg.ad, seg.b1 + seg.b2, desired)
            except ControlError:
                return None
        return gains

    def objective(self, thetas: np.ndarray) -> np.ndarray:
        batch = []
        bad = np.zeros(thetas.shape[0], dtype=bool)
        for p in range(thetas.shape[0]):
            gains = self.gains_for(thetas[p])
            if gains is None:
                bad[p] = True
                batch.append(np.zeros((self.m, self.order)))
            else:
                batch.append(gains)
        result = self.evaluator.evaluate(np.stack(batch))
        objective = result["objective"]
        objective[bad] = 4.0 * self.evaluator.big
        return objective

    def default_seeds(self) -> np.ndarray:
        """A spread of aggressiveness levels as deterministic seeds."""
        seeds = []
        for factor in (0.15, 0.3, 0.5, 0.7, 0.85):
            theta = []
            wn = self.w_min + factor * (self.w_max - self.w_min)
            for _ in range(self.order // 2):
                theta += [wn, 0.85]
            if self.order % 2:
                theta.append(wn)
            seeds.append(theta)
        return np.array(seeds)


def design_controller(
    plant: LtiPlant,
    periods: list[float],
    delays: list[float],
    spec: TrackingSpec,
    options: DesignOptions | None = None,
) -> ControllerDesign:
    """Design the holistic controller for one application and timing.

    Returns the best design found; it may be infeasible (unstable or
    saturating) only when the engine could not find any feasible point,
    in which case :attr:`ControllerDesign.satisfies` is ``False``.
    """
    options = options or DesignOptions()
    if options.engine not in ("hybrid", "seeded", "uniform", "poles"):
        raise ControlError(f"unknown design engine {options.engine!r}")
    if options.restarts < 1:
        raise ControlError(f"restarts must be >= 1, got {options.restarts}")
    segments = build_segments(plant.a, plant.b, periods, delays)
    plan = build_simulation_plan(
        plant.a, plant.b, plant.c, periods, delays, nsub=options.nsub
    )
    horizon = options.horizon_factor * spec.deadline + plan.idle_gap
    evaluator = _GainEvaluator(plant, segments, plan, spec, horizon)

    best: ControllerDesign | None = None
    for restart in range(options.restarts):
        rng = np.random.default_rng(options.seed + 104729 * restart)
        design = _design_once(plant, evaluator, options, rng)
        if best is None or design.objective < best.objective:
            best = design
    assert best is not None
    return best


def _design_once(
    plant: LtiPlant,
    evaluator: _GainEvaluator,
    options: DesignOptions,
    rng: np.random.Generator,
) -> ControllerDesign:
    """One swarm run of the selected engine."""
    if options.engine == "poles":
        from .polesearch import design_poles_engine

        return design_poles_engine(evaluator, options, rng)

    if options.engine == "uniform":
        best_gains = _design_uniform(evaluator, options, rng)
    else:
        stage_a = _StageA(evaluator, options)
        result_a = pso_minimize(
            stage_a.objective,
            stage_a.lower,
            stage_a.upper,
            options.stage_a,
            rng,
            seeds=stage_a.default_seeds(),
        )
        best_gains = stage_a.gains_for(result_a.best_position)
        if best_gains is None:
            raise DesignInfeasibleError(
                f"no pole target is realizable for plant {plant.name!r}"
            )
        if options.engine == "hybrid":
            best_gains = _refine_gains(evaluator, best_gains, options, rng)

    return _finalize(evaluator, best_gains, options.engine)


def _refine_gains(
    evaluator: _GainEvaluator,
    center: np.ndarray,
    options: DesignOptions,
    rng: np.random.Generator,
) -> np.ndarray:
    """Stage B: direct PSO over all gain entries around ``center``."""
    flat = center.reshape(-1)
    spread = 2.5 * np.abs(flat) + 0.5 * (np.abs(flat).mean() + 1e-9)
    lower = flat - spread
    upper = flat + spread

    def objective(batch_flat: np.ndarray) -> np.ndarray:
        batch = batch_flat.reshape(-1, evaluator.m, evaluator.order)
        return evaluator.evaluate(batch)["objective"]

    result = pso_minimize(
        objective, lower, upper, options.stage_b, rng, seeds=flat[None, :]
    )
    refined = result.best_position.reshape(evaluator.m, evaluator.order)
    # Keep whichever of (center, refined) evaluates better — PSO noise
    # must never make the final design worse than its seed.
    both = evaluator.evaluate(np.stack([center, refined]))
    if both["objective"][1] <= both["objective"][0]:
        return refined
    return center


def _design_uniform(
    evaluator: _GainEvaluator,
    options: DesignOptions,
    rng: np.random.Generator,
) -> np.ndarray:
    """Non-holistic ablation: one average-period design for all tasks."""
    from .discretize import zoh

    order = evaluator.order
    m = evaluator.m
    h_mean = sum(seg.h for seg in evaluator.segments) / m
    ad, gamma = zoh(evaluator.plant.a, evaluator.plant.b, h_mean)
    spec = evaluator.spec
    w_min = 0.25 / spec.deadline
    w_max = math.pi / h_mean
    lower = []
    upper = []
    for _ in range(order // 2):
        lower += [w_min, options.min_damping]
        upper += [w_max, options.max_damping]
    if order % 2:
        lower.append(w_min)
        upper.append(w_max)

    def objective(thetas: np.ndarray) -> np.ndarray:
        batch = np.empty((thetas.shape[0], m, order))
        bad = np.zeros(thetas.shape[0], dtype=bool)
        for p in range(thetas.shape[0]):
            desired = np.exp(_continuous_poles(thetas[p], order) * h_mean)
            try:
                k_row = place_poles_siso(ad, gamma, desired)
            except ControlError:
                bad[p] = True
                k_row = np.zeros(order)
            batch[p] = np.tile(k_row, (m, 1))
        values = evaluator.evaluate(batch)["objective"]
        values[bad] = 4.0 * evaluator.big
        return values

    result = pso_minimize(
        objective, np.array(lower), np.array(upper), options.stage_a, rng
    )
    desired = np.exp(_continuous_poles(result.best_position, order) * h_mean)
    k_row = place_poles_siso(ad, gamma, desired)
    return np.tile(k_row, (m, 1))


def _finalize(
    evaluator: _GainEvaluator, gains: np.ndarray, engine: str
) -> ControllerDesign:
    """Evaluate the final gain set once and package the result."""
    result = evaluator.evaluate(gains[None])
    return ControllerDesign(
        gains=gains,
        feedforward=result["feedforward"][0],
        settling=float(result["settling"][0]),
        u_peak=float(result["u_peak"][0]),
        spectral_radius=float(result["rho"][0]),
        objective=float(result["objective"][0]),
        n_evaluations=evaluator.n_evaluations,
        engine=engine,
    )
