"""Batched worst-case tracking simulation with intersample checking.

Simulates the switched closed loop an application experiences under a
given schedule timing (paper Fig. 5), for a whole swarm of candidate
gain sets at once.  The scenario is the paper's most conservative one
(Section II-A/V): the reference step happens right after the sensing
instant of the application's *last* consecutive task, so the controller
only reacts after the long idle gap.

Exactness: state propagation uses the exact ZOH/delayed-ZOH matrices; in
between samples the continuous output is checked on a configurable
sub-grid whose observation maps are also exact (``y(t) = w·x_k +
s1·u_prev + s2·u_curr`` with precomputed ``w, s1, s2``), so settling is
measured on the continuous output, not only at sampling instants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ControlError
from .discretize import zoh_delayed
from .lifted import build_segments


@dataclass(frozen=True)
class _SegmentSim:
    """Full-step dynamics plus exact sub-grid observation maps."""

    ad: np.ndarray          # (l, l)
    b1: np.ndarray          # (l,)
    b2: np.ndarray          # (l,)
    obs_times: np.ndarray   # (s,) offsets within the segment, ascending
    obs_w: np.ndarray       # (s, l): y(t) state weights
    obs_s1: np.ndarray      # (s,): y(t) weight on u_prev
    obs_s2: np.ndarray      # (s,): y(t) weight on u_curr


@dataclass(frozen=True)
class SimulationPlan:
    """Precomputed timing-dependent data for tracking simulations.

    Building the plan is the expensive part (matrix exponentials); it is
    independent of the controller gains, so one plan serves a whole
    design search.
    """

    segments: tuple[_SegmentSim, ...]
    periods: tuple[float, ...]
    delays: tuple[float, ...]
    c: np.ndarray
    order: int

    @property
    def n_phases(self) -> int:
        """Number of tasks per hyperperiod (m)."""
        return len(self.segments)

    @property
    def hyperperiod(self) -> float:
        """Duration of one schedule hyperperiod for this application."""
        return float(sum(self.periods))

    @property
    def idle_gap(self) -> float:
        """The long sampling period ``h(m)`` preceding the first sample."""
        return self.periods[-1]


def build_simulation_plan(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    periods: list[float],
    delays: list[float],
    nsub: int = 4,
) -> SimulationPlan:
    """Precompute per-segment propagation and observation matrices.

    ``nsub`` intersample observation points are placed per segment (the
    actuation instant ``tau`` is always included as an extra point).
    """
    if nsub < 1:
        raise ControlError(f"nsub must be >= 1, got {nsub}")
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.asarray(b, dtype=float).reshape(-1)
    c = np.asarray(c, dtype=float).reshape(-1)
    segments = build_segments(a, b, periods, delays)
    sims = []
    for seg in segments:
        grid = {seg.h * i / nsub for i in range(1, nsub + 1)}
        if 0.0 < seg.tau < seg.h:
            grid.add(seg.tau)
        times = np.array(sorted(grid))
        obs_w = np.empty((len(times), a.shape[0]))
        obs_s1 = np.empty(len(times))
        obs_s2 = np.empty(len(times))
        for i, t in enumerate(times):
            ad_t, b1_t, b2_t = zoh_delayed(a, b, t, min(seg.tau, t))
            obs_w[i] = c @ ad_t
            obs_s1[i] = c @ b1_t
            obs_s2[i] = c @ b2_t
        sims.append(
            _SegmentSim(seg.ad, seg.b1, seg.b2, times, obs_w, obs_s1, obs_s2)
        )
    return SimulationPlan(
        segments=tuple(sims),
        periods=tuple(float(h) for h in periods),
        delays=tuple(float(t) for t in delays),
        c=c,
        order=a.shape[0],
    )


@dataclass
class TrackingResult:
    """Batched outcome of a worst-case tracking simulation.

    ``settling`` is measured from the reference-step instant (i.e. it
    includes the idle gap before the first reacting sample) and is
    ``inf`` for trajectories still outside the band at the horizon.
    """

    settling: np.ndarray       # (P,)
    u_peak: np.ndarray         # (P,)
    final_error: np.ndarray    # (P,) |y - r| at the horizon
    times: np.ndarray | None = None    # (T,) absolute times (step = 0)
    outputs: np.ndarray | None = None  # (P, T)
    input_times: np.ndarray | None = None  # (S,) actuation instants
    inputs: np.ndarray | None = None       # (P, S) applied input levels

    def scalar_settling(self) -> float:
        """Settling time when the batch holds a single design."""
        if self.settling.shape[0] != 1:
            raise ControlError("scalar_settling() needs a single-design batch")
        return float(self.settling[0])


def simulate_tracking(
    plan: SimulationPlan,
    gains: np.ndarray,
    feedforward: np.ndarray,
    r: float,
    x0: np.ndarray,
    u0: float,
    horizon: float,
    band: float,
    clamp: float | None = None,
    record: bool = False,
) -> TrackingResult:
    """Simulate the worst-case tracking scenario for a batch of designs.

    Parameters
    ----------
    plan:
        Precomputed simulation plan for the application's timing.
    gains:
        Feedback gains, shape ``(P, m, l)`` (or ``(m, l)`` for one design).
    feedforward:
        Feedforward gains, shape ``(P, m)`` (or ``(m,)``).
    r:
        New reference value (the step target).
    x0:
        Plant state at the step instant (the old equilibrium).
    u0:
        Input level held when the step occurs (the old equilibrium input).
    horizon:
        Simulated duration *after* the step, in seconds.
    band:
        Absolute settling band: settled when ``|y - r| <= band``.
    clamp:
        When given, inputs are saturated to ``[-clamp, clamp]`` before
        application (the paper instead *designs* for non-saturation; the
        clamp supports robustness experiments).
    record:
        Keep full output/input trajectories (memory ~ P × steps).
    """
    gains = np.asarray(gains, dtype=float)
    feedforward = np.asarray(feedforward, dtype=float)
    if gains.ndim == 2:
        gains = gains[None, :, :]
    if feedforward.ndim == 1:
        feedforward = feedforward[None, :]
    n_batch, m, order = gains.shape
    if m != plan.n_phases or order != plan.order:
        raise ControlError(
            f"gains shape {gains.shape} does not match plan "
            f"(m={plan.n_phases}, l={plan.order})"
        )
    if feedforward.shape != (n_batch, m):
        raise ControlError(
            f"feedforward shape {feedforward.shape} does not match gains"
        )

    gap = plan.idle_gap
    hyper = plan.hyperperiod
    n_hyper = max(1, math.ceil((horizon - gap) / hyper))
    x = np.tile(np.asarray(x0, dtype=float).reshape(1, -1), (n_batch, 1))
    u_prev = np.full(n_batch, float(u0))

    y_start = x @ plan.c
    violating0 = np.abs(y_start - r) > band
    # The step occurred `gap` seconds before the first sample; during the
    # gap the output sat at y_start.  Encode "violating through the gap"
    # as a last-violation time of 0 (first-sample instant).
    last_violation = np.where(violating0, 0.0, -gap)
    u_peak = np.zeros(n_batch)

    times_acc: list[np.ndarray] = []
    outputs_acc: list[np.ndarray] = []
    input_times_acc: list[float] = []
    inputs_acc: list[np.ndarray] = []
    if record:
        times_acc.append(np.array([0.0]))
        outputs_acc.append(y_start[:, None])

    t_segment_start = 0.0
    for step in range(n_hyper * m):
        phase = step % m
        seg = plan.segments[phase]
        u_curr = np.einsum("pl,pl->p", gains[:, phase, :], x) + feedforward[:, phase] * r
        if clamp is not None:
            u_curr = np.clip(u_curr, -clamp, clamp)
        u_peak = np.maximum(u_peak, np.abs(u_curr))

        # Exact intersample outputs at the observation grid.
        y_sub = (
            x @ seg.obs_w.T
            + u_prev[:, None] * seg.obs_s1[None, :]
            + u_curr[:, None] * seg.obs_s2[None, :]
        )
        t_abs = t_segment_start + seg.obs_times
        violating = np.abs(y_sub - r) > band
        candidate = np.where(violating, t_abs[None, :], -np.inf).max(axis=1)
        last_violation = np.maximum(last_violation, candidate)

        if record:
            times_acc.append(t_abs)
            outputs_acc.append(y_sub)
            input_times_acc.append(t_segment_start + plan.delays[phase])
            inputs_acc.append(u_curr.copy())

        x = x @ seg.ad.T + np.outer(u_prev, seg.b1) + np.outer(u_curr, seg.b2)
        u_prev = u_curr
        t_segment_start += plan.periods[phase]

    final_y = x @ plan.c
    final_error = np.abs(final_y - r)
    t_final = t_segment_start
    # A trajectory still violating at the last grid instant (== t_final,
    # every segment's grid ends on its boundary) has not provably settled
    # within the horizon.
    settled = last_violation < t_final - 1e-15
    settling = np.where(settled, last_violation + gap, np.inf)

    result = TrackingResult(
        settling=settling,
        u_peak=u_peak,
        final_error=final_error,
    )
    if record:
        # Shift recorded times so t = 0 is the reference step.
        result.times = np.concatenate([t + gap for t in times_acc])
        result.times[0] = 0.0  # the pre-gap equilibrium point
        result.outputs = np.concatenate(outputs_acc, axis=1)
        result.input_times = np.asarray(input_times_acc) + gap
        result.inputs = np.stack(inputs_acc, axis=1) if inputs_acc else None
    return result
