"""Continuous-time SISO LTI plant model (paper Section II-A).

The plant is given in state-space form ``dx/dt = A x + B u``,
``y = C x``; the discrete-time model of eq. (1) is obtained by ZOH
discretization at the (possibly non-uniform) sampling periods the
schedule induces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ControlError


@dataclass(frozen=True)
class LtiPlant:
    """A continuous-time single-input single-output LTI plant.

    Parameters
    ----------
    name:
        Identifier used in reports.
    a:
        System matrix, shape ``(l, l)``.
    b:
        Input vector, shape ``(l,)``.
    c:
        Output (measurement) vector, shape ``(l,)``.
    """

    name: str
    a: np.ndarray
    b: np.ndarray
    c: np.ndarray

    def __post_init__(self) -> None:
        a = np.atleast_2d(np.asarray(self.a, dtype=float))
        b = np.asarray(self.b, dtype=float).reshape(-1)
        c = np.asarray(self.c, dtype=float).reshape(-1)
        if a.shape[0] != a.shape[1]:
            raise ControlError(f"plant {self.name!r}: A must be square, got {a.shape}")
        order = a.shape[0]
        if b.shape != (order,) or c.shape != (order,):
            raise ControlError(
                f"plant {self.name!r}: B and C must have {order} entries, "
                f"got B{b.shape} C{c.shape}"
            )
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)
        object.__setattr__(self, "c", c)

    @property
    def order(self) -> int:
        """Number of states ``l``."""
        return self.a.shape[0]

    def is_controllable(self, tol: float = 1e-9) -> bool:
        """Kalman rank test of the pair ``(A, B)``."""
        from .ackermann import controllability_matrix

        ctrb = controllability_matrix(self.a, self.b)
        return bool(np.linalg.matrix_rank(ctrb, tol=tol * max(1.0, np.abs(ctrb).max())) == self.order)

    def equilibrium(self, y_ref: float) -> tuple[np.ndarray, float]:
        """State/input pair holding the output at ``y_ref``.

        Solves ``A x + B u = 0``, ``C x = y_ref``.  Raises
        :class:`ControlError` when the plant has a transmission zero at
        the origin (no such equilibrium exists).
        """
        order = self.order
        lhs = np.zeros((order + 1, order + 1))
        lhs[:order, :order] = self.a
        lhs[:order, order] = self.b
        lhs[order, :order] = self.c
        rhs = np.zeros(order + 1)
        rhs[order] = y_ref
        try:
            solution = np.linalg.solve(lhs, rhs)
        except np.linalg.LinAlgError as exc:
            raise ControlError(
                f"plant {self.name!r} has no unique equilibrium for y={y_ref}"
            ) from exc
        return solution[:order], float(solution[order])

    def dc_gain(self) -> float:
        """Steady-state gain ``-C A^{-1} B`` (infinite for integrators)."""
        try:
            return float(-self.c @ np.linalg.solve(self.a, self.b))
        except np.linalg.LinAlgError:
            return float("inf")

    def poles(self) -> np.ndarray:
        """Continuous-time poles (eigenvalues of A)."""
        return np.linalg.eigvals(self.a)
