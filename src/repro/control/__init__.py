"""Discrete-time control substrate (Sections II-A and III of the paper).

Provides the control-theoretic machinery the co-design needs:

* :class:`~repro.control.lti.LtiPlant` — continuous-time SISO LTI plants;
* :mod:`~repro.control.discretize` — exact ZOH discretization, including
  the delayed-input split used for sensing-to-actuation delays;
* :mod:`~repro.control.ackermann` — SISO pole placement;
* :mod:`~repro.control.lifted` — the holistic lifted closed-loop matrix
  ``A_hol`` of the paper's eq. (16), generalized to any number of
  consecutive tasks;
* :mod:`~repro.control.simulate` — batched worst-case tracking
  simulation with intersample output checking;
* :mod:`~repro.control.pso` — the particle-swarm optimizer;
* :mod:`~repro.control.design` — the holistic controller design that
  maximizes control performance for a given schedule timing.
"""

from .lti import LtiPlant
from .discretize import zoh, zoh_delayed
from .ackermann import controllability_matrix, place_poles_siso
from .lifted import Segment, build_segments, lifted_closed_loop, feedforward_gain
from .metrics import quadratic_cost, overshoot, settling_time_of_trajectory
from .pso import PsoOptions, PsoResult, pso_minimize
from .simulate import (
    SimulationPlan,
    TrackingResult,
    build_simulation_plan,
    simulate_tracking,
)
from .design import (
    ControllerDesign,
    DesignOptions,
    TrackingSpec,
    design_controller,
)

__all__ = [
    "ControllerDesign",
    "DesignOptions",
    "LtiPlant",
    "PsoOptions",
    "PsoResult",
    "Segment",
    "SimulationPlan",
    "TrackingResult",
    "TrackingSpec",
    "build_segments",
    "build_simulation_plan",
    "controllability_matrix",
    "design_controller",
    "feedforward_gain",
    "lifted_closed_loop",
    "overshoot",
    "place_poles_siso",
    "pso_minimize",
    "quadratic_cost",
    "settling_time_of_trajectory",
    "simulate_tracking",
    "zoh",
    "zoh_delayed",
]
