"""Vectorized batch controller design (lockstep across design units).

The schedule search spends essentially all of its time inside
:func:`repro.control.design.design_controller`: PSO over pole targets,
Ackermann placement per task, a lifted-eigenvalue stability check and a
switched closed-loop simulation, all repeated per (application, timing)
pair and per restart.  This module runs *many* of those design problems
at once: one "design unit" per (problem, restart), all swarms advanced
in lockstep by :func:`repro.control.pso.pso_minimize_many`, and every
per-particle numerical stage replaced by a stacked-array twin that
processes the whole unit batch per call.

Serial-oracle contract
----------------------
The serial path (``design_controller`` and everything under it) is the
oracle; this module never replaces it and must reproduce it exactly.
The batched twins re-execute the *same* floating-point operations in the
same order: every BLAS/LAPACK call is issued with the same shapes the
serial path uses (per-unit ``(P, l)`` blocks, stacked gufunc batches
whose per-slice kernels match the serial calls), element-wise work is
fused across units (single-rounded IEEE ops are shape-independent), and
``np.poly``'s convolution recurrence is re-issued per particle rather
than re-derived (its complex FMA kernel is length-dependent).  On any
one machine the two paths therefore agree bit-for-bit; tests assert
exact equality, not tolerances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ControlError, DesignInfeasibleError
from .ackermann import controllability_matrix
from .design import (
    ControllerDesign,
    DesignOptions,
    TrackingSpec,
    _continuous_poles,
    _GainEvaluator,
    _StageA,
    design_controller,
)
from .lifted import Segment, build_segments
from .lti import LtiPlant
from .pso import pso_minimize_many
from .simulate import build_simulation_plan


@dataclass(frozen=True)
class DesignRequest:
    """One (plant, timing, spec) controller-design problem."""

    plant: LtiPlant
    periods: tuple[float, ...]
    delays: tuple[float, ...]
    spec: TrackingSpec
    options: DesignOptions


def _poly_from_roots(roots: np.ndarray, cast_real: bool) -> np.ndarray:
    """``np.poly(roots)`` minus its dispatch overhead.

    Re-issues the exact convolution recurrence ``np.poly`` runs (the
    complex convolve kernel is length-dependent, so it must be *called*,
    not re-derived); the conjugate-closure test deciding ``cast_real``
    is hoisted to the caller, where it batches across particles.
    """
    a = np.ones((1,), dtype=complex)
    for zero in roots:
        a = np.convolve(a, np.array([1, -zero], dtype=complex), mode="full")
    if cast_real:
        a = a.real.copy()
    return a


class _SegmentPlacer:
    """Hoisted Ackermann placement for one (unit, segment).

    Everything in :func:`place_poles_siso` that does not depend on the
    pole targets — the controllability matrix, its conditioning test,
    the powers of ``A`` and the solve against ``e_l`` — is constant per
    segment, so it is computed once and reused for every particle.
    """

    def __init__(self, segment: Segment, rcond: float = 1e-12) -> None:
        a = np.atleast_2d(np.asarray(segment.ad, dtype=float))
        b = np.asarray(segment.b1 + segment.b2, dtype=float).reshape(-1)
        self.h = segment.h
        order = a.shape[0]
        self.order = order
        ctrb = controllability_matrix(a, b)
        scale = np.abs(ctrb).max()
        self.uncontrollable = bool(
            scale == 0 or 1.0 / np.linalg.cond(ctrb) < rcond
        )
        if self.uncontrollable:
            return
        # Powers eye, A, A^2, ... exactly as the serial phi(A) loop
        # generates them (eye @ A, then repeated right-multiplication).
        powers = [np.eye(order)]
        for _ in range(order):
            powers.append(powers[-1] @ a)
        self.powers = powers
        last_row = np.zeros(order)
        last_row[-1] = 1.0
        self.k_solve = np.linalg.solve(ctrb.T, last_row)

    def place_batch(self, desired: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gain rows ``(P, l)`` for pole sets ``(P, l)``; returns ``(k, bad)``."""
        n_batch, order = desired.shape
        bad = np.zeros(n_batch, dtype=bool)
        if self.uncontrollable:
            bad[:] = True
            return np.zeros((n_batch, order)), bad
        sorted_roots = np.sort(desired, axis=1)
        sorted_conj = np.sort(desired.conjugate(), axis=1)
        cast_real = np.all(sorted_roots == sorted_conj, axis=1)
        coefficients = np.empty((n_batch, order + 1))
        for p in range(n_batch):
            coeffs = _poly_from_roots(desired[p], bool(cast_real[p]))
            if np.iscomplexobj(coeffs):
                if np.abs(coeffs.imag).max() > 1e-8 * max(
                    1.0, np.abs(coeffs).max()
                ):
                    bad[p] = True
                    coefficients[p] = 0.0
                    continue
                coeffs = coeffs.real
            coefficients[p] = coeffs
        phi = np.zeros((n_batch, order, order))
        for i, power in enumerate(self.powers):
            phi += coefficients[:, order - i, None, None] * power[None, :, :]
        k_rows = np.ascontiguousarray(
            np.broadcast_to(self.k_solve, (n_batch, order))
        )
        placed = np.matmul(k_rows[:, None, :], phi)[:, 0, :]
        return -placed, bad


class _BatchedStageA:
    """Stacked twin of ``_StageA``'s per-particle gain construction."""

    def __init__(self, stage_a: _StageA) -> None:
        self.stage_a = stage_a
        evaluator = stage_a.evaluator
        self.order = evaluator.order
        self.m = evaluator.m
        self.placers = [_SegmentPlacer(seg) for seg in evaluator.segments]

    def gains_batch(self, thetas: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-task gains ``(P, m, l)`` and the infeasible-particle mask."""
        n_batch = thetas.shape[0]
        poles_ct = np.stack(
            [_continuous_poles(thetas[p], self.order) for p in range(n_batch)]
        )
        gains = np.empty((n_batch, self.m, self.order))
        bad = np.zeros(n_batch, dtype=bool)
        for j, placer in enumerate(self.placers):
            desired = np.exp(poles_ct * placer.h)
            rows, segment_bad = placer.place_batch(desired)
            gains[:, j, :] = rows
            bad |= segment_bad
        gains[bad] = 0.0
        return gains, bad


class _FeedforwardGroup:
    """Fused feedforward gains (paper eq. 17) across units of one order.

    Stacks every (unit, segment) pair into one flat axis so the whole
    batch needs a single outer product, one stacked determinant, one
    stacked solve and one stacked matrix-vector product — all gufuncs
    whose per-slice kernels are exactly the serial
    ``_GainEvaluator.feedforward_batch`` calls.
    """

    def __init__(self, evaluators: list[_GainEvaluator], unit_indices: list[int]) -> None:
        self.unit_indices = unit_indices
        self.m_list = [ge.m for ge in evaluators]
        offsets = [0]
        for m in self.m_list:
            offsets.append(offsets[-1] + m)
        self.offsets = offsets
        order = evaluators[0].order
        self.order = order
        self.ff_a = np.concatenate([ge._ff_a for ge in evaluators], axis=0)
        self.ff_b = np.concatenate([ge._ff_b for ge in evaluators], axis=0)
        self.c = np.concatenate(
            [
                np.ascontiguousarray(
                    np.broadcast_to(ge.plant.c, (m, order))
                )
                for ge, m in zip(evaluators, self.m_list)
            ],
            axis=0,
        )
        self.eye = np.eye(order)

    def run(self, gains: list[np.ndarray], f_out: list, invalid_out: list) -> None:
        order = self.order
        n_flat = self.ff_a.shape[0]
        n_batch = gains[0].shape[0]
        g = np.empty((n_flat, n_batch, order))
        for u, lo in enumerate(self.offsets[:-1]):
            g[lo:lo + self.m_list[u]] = gains[u].transpose(1, 0, 2)
        # M = I - Ad - Gamma K per (unit, segment, particle); the einsum
        # is a pure outer product, element-wise identical to the serial
        # per-segment call.
        mats = self.ff_a[:, None, :, :] - np.einsum(
            "fl,fpk->fplk", self.ff_b, g
        )
        dets = np.linalg.det(mats)
        bad = np.abs(dets) < 1e-12
        safe = mats.copy()
        safe[bad] = self.eye
        rhs = np.broadcast_to(
            self.ff_b[:, None, :, None], (n_flat, n_batch, order, 1)
        )
        solved = np.linalg.solve(safe, rhs)[..., 0]
        denom = np.matmul(solved, self.c[:, :, None])[..., 0]
        bad |= np.abs(denom) < 1e-12
        f_flat = np.where(bad, 0.0, 1.0 / np.where(bad, 1.0, denom))
        for u, lo in enumerate(self.offsets[:-1]):
            hi = lo + self.m_list[u]
            out = self.unit_indices[u]
            f_out[out] = np.ascontiguousarray(f_flat[lo:hi].T)
            invalid_out[out] = bad[lo:hi].any(axis=0)


class _LiftedBatch:
    """Stacked construction of the lifted ``A_hol`` for a particle batch.

    Mirrors :func:`repro.control.lifted.lifted_closed_loop` term by term:
    matrix products become stacked gufunc matmuls (per-slice kernels
    identical to the serial 2-D calls), outer products and additions stay
    element-wise and fuse across particles.
    """

    def __init__(self, segments: list[Segment]) -> None:
        self.segments = segments
        self.m = len(segments)
        self.order = segments[0].ad.shape[0]
        self.dim = self.order + 1 if self.m == 1 else self.m * self.order
        # Gain-independent stacks (broadcast A_d copies, basis selectors,
        # zero reference vector) keyed by particle count; they are only
        # ever read, so reuse across evaluate calls is safe.
        self._static: dict[int, tuple] = {}

    def _static_for(self, n_batch: int) -> tuple:
        cached = self._static.get(n_batch)
        if cached is not None:
            return cached
        m, order, dim = self.m, self.order, self.dim
        ad_b = [
            np.ascontiguousarray(
                np.broadcast_to(seg.ad, (n_batch, order, order))
            )
            for seg in self.segments
        ]
        basis = []
        for j in range(m):
            coeff = np.zeros((n_batch, order, dim))
            coeff[:, :, j * order:(j + 1) * order] = np.eye(order)
            basis.append(coeff)
        zero_rvec = np.zeros((n_batch, order))
        cached = (ad_b, basis, zero_rvec)
        self._static[n_batch] = cached
        return cached

    def build(self, gains: np.ndarray, feedforward: np.ndarray) -> np.ndarray:
        m, order = self.m, self.order
        n_batch = gains.shape[0]
        segments = self.segments
        if m == 1:
            seg = segments[0]
            k = gains[:, 0, :]
            a_hol = np.zeros((n_batch, order + 1, order + 1))
            a_hol[:, :order, :order] = (
                seg.ad[None, :, :] + seg.b2[None, :, None] * k[:, None, :]
            )
            a_hol[:, :order, order] = seg.b1[None, :]
            a_hol[:, order, :order] = k
            return a_hol

        dim = self.dim
        ad_b, basis, zero_rvec = self._static_for(n_batch)
        g_rows = [
            np.ascontiguousarray(gains[:, j, :])[:, None, :] for j in range(m)
        ]

        def input_expr(j, coeff, rvec):
            u_coeff = np.matmul(g_rows[j], coeff)[:, 0, :]
            u_rvec = (
                np.matmul(g_rows[j], rvec[:, :, None])[:, 0, 0]
                + feedforward[:, j]
            )
            return u_coeff, u_rvec

        u_prev_hp = [input_expr(j, basis[j], zero_rvec) for j in range(m)]

        seg_long = segments[m - 1]
        u_before = u_prev_hp[m - 2]
        u_after = u_prev_hp[m - 1]
        coeff = (
            np.matmul(ad_b[m - 1], basis[m - 1])
            + seg_long.b1[None, :, None] * u_before[0][:, None, :]
            + seg_long.b2[None, :, None] * u_after[0][:, None, :]
        )
        rvec = (
            np.matmul(ad_b[m - 1], zero_rvec[:, :, None])[:, :, 0]
            + seg_long.b1[None, :] * u_before[1][:, None]
            + seg_long.b2[None, :] * u_after[1][:, None]
        )
        new_exprs = [(coeff, rvec)]

        new_inputs = [input_expr(0, new_exprs[0][0], new_exprs[0][1])]
        for j in range(m - 1):
            seg = segments[j]
            coeff_j, rvec_j = new_exprs[j]
            active = u_prev_hp[m - 1] if j == 0 else new_inputs[j - 1]
            coeff = (
                np.matmul(ad_b[j], coeff_j)
                + seg.b1[None, :, None] * active[0][:, None, :]
            )
            rvec = (
                np.matmul(ad_b[j], rvec_j[:, :, None])[:, :, 0]
                + seg.b1[None, :] * active[1][:, None]
            )
            if seg.has_inner_actuation:
                own = new_inputs[j]
                coeff = coeff + seg.b2[None, :, None] * own[0][:, None, :]
                rvec = rvec + seg.b2[None, :] * own[1][:, None]
            new_exprs.append((coeff, rvec))
            if j + 1 < m:
                new_inputs.append(
                    input_expr(j + 1, new_exprs[j + 1][0], new_exprs[j + 1][1])
                )

        a_hol = np.empty((n_batch, dim, dim))
        for j, (coeff, _rvec) in enumerate(new_exprs):
            a_hol[:, j * order:(j + 1) * order, :] = coeff
        return a_hol


class _TrackingGroup:
    """Fused tracking simulation for units sharing one plant order.

    One global time loop advances every unit's trajectory batch at once:
    the two per-segment matrix products keep their serial shapes (issued
    per active unit on its contiguous ``(P, l)`` block), while the input
    law, intersample band checks, state updates and settling bookkeeping
    fuse across all units via gathered per-step coefficient tables.
    Units that reach their own horizon are frozen by masking.
    """

    def __init__(self, evaluators: list[_GainEvaluator], unit_indices: list[int]) -> None:
        self.evaluators = evaluators
        self.unit_indices = unit_indices
        n_units = len(evaluators)
        order = evaluators[0].plan.order
        self.order = order
        self.m_list = [ge.plan.n_phases for ge in evaluators]
        # Flat slot 0 is a dedicated all-zero segment for frozen units:
        # zero gains/coefficients and t = -inf observation times make the
        # fused update a no-op there without per-array masking.
        offsets = [1]
        for m in self.m_list:
            offsets.append(offsets[-1] + m)
        self.offsets = offsets
        total_m = offsets[-1]

        self.r = np.array([float(ge.spec.r) for ge in evaluators])
        self.band = np.array([ge.spec.band for ge in evaluators])
        self.gap = np.array([ge.plan.idle_gap for ge in evaluators])
        self.u0 = np.array([float(ge.u0) for ge in evaluators])
        self.x0 = np.stack(
            [np.asarray(ge.x0, dtype=float).reshape(-1) for ge in evaluators]
        )
        self.c_list = [ge.plan.c for ge in evaluators]

        steps = []
        for ge in evaluators:
            gap = ge.plan.idle_gap
            hyper = ge.plan.hyperperiod
            n_hyper = max(1, math.ceil((ge.horizon - gap) / hyper))
            steps.append(n_hyper * ge.plan.n_phases)
        self.steps = steps
        self.max_steps = max(steps)

        segment_objs = [None]
        for ge in evaluators:
            segment_objs.extend(ge.plan.segments)
        self.segment_objs = segment_objs
        self.n_obs = [0] + [
            len(seg.obs_times) for seg in segment_objs[1:]
        ]
        s_max = max(self.n_obs)
        self.s_max = s_max
        self.b1 = np.zeros((total_m, order))
        self.b2 = np.zeros((total_m, order))
        self.s1 = np.zeros((total_m, s_max))
        self.s2 = np.zeros((total_m, s_max))
        # Padded observation slots carry t = -inf so whatever garbage the
        # padded output columns hold can never become a violation time.
        self.obs_t = np.full((total_m, s_max), -np.inf)
        self.periods = np.zeros(total_m)
        flat = 1
        for u, ge in enumerate(evaluators):
            for j, seg in enumerate(ge.plan.segments):
                count = len(seg.obs_times)
                self.b1[flat] = seg.b1
                self.b2[flat] = seg.b2
                self.s1[flat, :count] = seg.obs_s1
                self.s2[flat, :count] = seg.obs_s2
                self.obs_t[flat, :count] = seg.obs_times
                self.periods[flat] = ge.plan.periods[j]
                flat += 1

        # Per-step gather tables: flat segment index per unit (slot 0 for
        # frozen units) plus the active mask.
        self.seg_index = np.zeros((self.max_steps, n_units), dtype=np.intp)
        self.active = np.zeros((self.max_steps, n_units), dtype=bool)
        for k in range(self.max_steps):
            for u in range(n_units):
                if k < steps[u]:
                    self.seg_index[k, u] = offsets[u] + k % self.m_list[u]
                    self.active[k, u] = True

        # The step-k coefficient pattern is static, so expand it once:
        # stacked A_d per step (identity for frozen units — the result is
        # masked out anyway) used through a transpose view so each slice
        # presents the same layout as the serial ``x @ ad.T`` call, and
        # observation-map stacks sub-grouped by grid size so the fused
        # matmul never pads a GEMM shape.
        ad_steps = np.empty((self.max_steps, n_units, order, order))
        self.obs_groups: list[list[tuple[np.ndarray, np.ndarray, int]]] = []
        for k in range(self.max_steps):
            by_size: dict[int, list[int]] = {}
            for u in range(n_units):
                if self.active[k, u]:
                    flat = self.seg_index[k, u]
                    ad_steps[k, u] = self.segment_objs[flat].ad
                    by_size.setdefault(self.n_obs[flat], []).append(u)
                else:
                    ad_steps[k, u] = np.eye(order)
            groups = []
            for count, members in by_size.items():
                stack = np.stack(
                    [
                        self.segment_objs[self.seg_index[k, u]].obs_w
                        for u in members
                    ]
                )
                groups.append(
                    (np.array(members), stack.transpose(0, 2, 1), count)
                )
            self.obs_groups.append(groups)
        self.ad_t_steps = [
            ad_steps[k].transpose(0, 2, 1) for k in range(self.max_steps)
        ]
        self.s1_steps = self.s1[self.seg_index][:, :, None, :]
        self.s2_steps = self.s2[self.seg_index][:, :, None, :]
        self.b1_steps = self.b1[self.seg_index][:, :, None, :]
        self.b2_steps = self.b2[self.seg_index][:, :, None, :]
        self.obs_t_steps = self.obs_t[self.seg_index]
        self.period_steps = self.periods[self.seg_index]

    def run(
        self,
        gains: list[np.ndarray],
        feedforwards: list[np.ndarray],
        settling_out: list,
        u_peak_out: list,
        final_error_out: list,
    ) -> None:
        n_units = len(self.evaluators)
        order = self.order
        n_batch = gains[0].shape[0]
        total = n_units * n_batch
        total_m = self.b1.shape[0]

        g_flat = np.empty((total_m, n_batch, order))
        f_flat = np.empty((total_m, n_batch))
        g_flat[0] = 0.0
        f_flat[0] = 0.0
        for u in range(n_units):
            lo, m = self.offsets[u], self.m_list[u]
            g_flat[lo:lo + m] = gains[u].transpose(1, 0, 2)
            f_flat[lo:lo + m] = feedforwards[u].transpose(1, 0)

        x = np.empty((n_units, n_batch, order))
        x[:] = self.x0[:, None, :]
        u_prev = np.empty((n_units, n_batch))
        u_prev[:] = self.u0[:, None]
        y_start = np.empty((n_units, n_batch))
        for u in range(n_units):
            y_start[u] = x[u] @ self.c_list[u]
        violating0 = np.abs(y_start - self.r[:, None]) > self.band[:, None]
        last_violation = np.where(violating0, 0.0, (-self.gap)[:, None])
        u_peak = np.zeros((n_units, n_batch))
        t_start = np.zeros(n_units)
        y_buf = np.empty((n_units, n_batch, self.s_max))
        r3 = self.r[:, None, None]
        band3 = self.band[:, None, None]

        # Frozen/padded rows legitimately produce inf/nan garbage that the
        # masks discard; silence only those spurious warnings.
        with np.errstate(over="ignore", invalid="ignore"):
            for k in range(self.max_steps):
                seg_idx = self.seg_index[k]
                active = self.active[k]
                active2 = active[:, None]
                g_step = g_flat[seg_idx]
                f_step = f_flat[seg_idx]
                u_curr = (
                    np.einsum(
                        "pl,pl->p",
                        g_step.reshape(total, order),
                        x.reshape(total, order),
                    ).reshape(n_units, n_batch)
                    + f_step * self.r[:, None]
                )
                u_peak = np.where(
                    active2, np.maximum(u_peak, np.abs(u_curr)), u_peak
                )

                for members, obs_w_t, count in self.obs_groups[k]:
                    y_buf[members, :, :count] = np.matmul(x[members], obs_w_t)
                y_sub = (
                    y_buf
                    + u_prev[:, :, None] * self.s1_steps[k]
                    + u_curr[:, :, None] * self.s2_steps[k]
                )
                t_abs = t_start[:, None] + self.obs_t_steps[k]
                violating = np.abs(y_sub - r3) > band3
                candidate = np.where(
                    violating, t_abs[:, None, :], -np.inf
                ).max(axis=2)
                # Frozen units gather slot 0, whose t = -inf observation
                # times make their candidate -inf — no mask needed here.
                last_violation = np.maximum(last_violation, candidate)

                x_new = (
                    np.matmul(x, self.ad_t_steps[k])
                    + u_prev[:, :, None] * self.b1_steps[k]
                    + u_curr[:, :, None] * self.b2_steps[k]
                )
                x = np.where(active2[:, :, None], x_new, x)
                u_prev = np.where(active2, u_curr, u_prev)
                # Slot 0 has period 0.0, so frozen clocks stay put.
                t_start = t_start + self.period_steps[k]

        for u in range(n_units):
            final_y = x[u] @ self.c_list[u]
            final_error = np.abs(final_y - self.r[u])
            t_final = float(t_start[u])
            settled = last_violation[u] < t_final - 1e-15
            settling = np.where(
                settled, last_violation[u] + self.gap[u], np.inf
            )
            out = self.unit_indices[u]
            settling_out[out] = settling
            u_peak_out[out] = u_peak[u].copy()
            final_error_out[out] = final_error


class _StackedTracking:
    """Order-grouped dispatcher over :class:`_TrackingGroup`."""

    def __init__(self, evaluators: list[_GainEvaluator]) -> None:
        self.n_units = len(evaluators)
        by_order: dict[int, list[int]] = {}
        for i, ge in enumerate(evaluators):
            by_order.setdefault(ge.plan.order, []).append(i)
        self.groups = [
            _TrackingGroup([evaluators[i] for i in indices], indices)
            for indices in by_order.values()
        ]

    def run(self, gains: list[np.ndarray], feedforwards: list[np.ndarray]):
        settling = [None] * self.n_units
        u_peak = [None] * self.n_units
        final_error = [None] * self.n_units
        for group in self.groups:
            group.run(
                [gains[i] for i in group.unit_indices],
                [feedforwards[i] for i in group.unit_indices],
                settling,
                u_peak,
                final_error,
            )
        return settling, u_peak, final_error


class BatchGainEvaluator:
    """Fused twin of ``_GainEvaluator.evaluate`` across design units.

    Takes one gain batch per unit (all with the same particle count) and
    returns one result dict per unit, identical to what each unit's own
    ``_GainEvaluator.evaluate`` would have produced.  Feedforward gains
    reuse the serial per-unit batch routine; the stability check batches
    the lifted-matrix eigenvalue problems across units of equal lifted
    dimension; the tracking simulations run through one fused time loop
    per plant order.  Evaluation counters on the unit evaluators advance
    exactly as in serial runs.
    """

    def __init__(self, evaluators: list[_GainEvaluator]) -> None:
        self.evaluators = evaluators
        self._tracking = _StackedTracking(evaluators)
        self._lifts = [_LiftedBatch(ge.segments) for ge in evaluators]
        by_dim: dict[int, list[int]] = {}
        for i, lift in enumerate(self._lifts):
            by_dim.setdefault(lift.dim, []).append(i)
        self._dim_groups = list(by_dim.values())
        by_order: dict[int, list[int]] = {}
        for i, ge in enumerate(evaluators):
            by_order.setdefault(ge.order, []).append(i)
        self._ff_groups = [
            _FeedforwardGroup([evaluators[i] for i in indices], indices)
            for indices in by_order.values()
        ]

    def _spectral_radii(self, gains: list[np.ndarray], feedforwards: list[np.ndarray]):
        radii = [None] * len(self.evaluators)
        for group in self._dim_groups:
            stacked = np.concatenate(
                [
                    self._lifts[i].build(gains[i], feedforwards[i])
                    for i in group
                ],
                axis=0,
            )
            magnitudes = np.abs(np.linalg.eigvals(stacked))
            rho = magnitudes.max(axis=1)
            offset = 0
            for i in group:
                count = gains[i].shape[0]
                radii[i] = rho[offset:offset + count]
                offset += count
        return radii

    def evaluate(self, gains_list: list[np.ndarray]) -> list[dict[str, np.ndarray]]:
        gains_list = [np.asarray(gains, dtype=float) for gains in gains_list]
        for ge, gains in zip(self.evaluators, gains_list):
            ge.n_evaluations += gains.shape[0]
        feedforwards: list = [None] * len(self.evaluators)
        invalids: list = [None] * len(self.evaluators)
        for group in self._ff_groups:
            group.run(
                [gains_list[i] for i in group.unit_indices],
                feedforwards,
                invalids,
            )
        radii = self._spectral_radii(gains_list, feedforwards)
        settling, u_peak, _final_error = self._tracking.run(
            gains_list, feedforwards
        )
        results = []
        for i, ge in enumerate(self.evaluators):
            objective = np.where(
                np.isfinite(settling[i]), settling[i], ge.big
            )
            unstable = radii[i] >= 1.0
            objective = objective + np.where(
                unstable,
                ge.big * (1.0 + np.minimum(radii[i] - 1.0, 10.0)),
                0.0,
            )
            saturated = u_peak[i] > ge.spec.u_max
            with np.errstate(divide="ignore", invalid="ignore"):
                excess = np.where(
                    saturated,
                    np.minimum(u_peak[i] / ge.spec.u_max - 1.0, 100.0),
                    0.0,
                )
            objective = objective + np.where(
                saturated, 0.2 * ge.big * (1.0 + excess), 0.0
            )
            objective = objective + np.where(invalids[i], 2.0 * ge.big, 0.0)
            results.append(
                {
                    "objective": objective,
                    "settling": settling[i],
                    "u_peak": u_peak[i],
                    "rho": radii[i],
                    "feedforward": feedforwards[i],
                    "invalid": invalids[i],
                }
            )
        return results


class _DesignUnit:
    """One (request, restart) pair advancing through the lockstep stages."""

    def __init__(self, request_index, restart, request, segments, plan, horizon):
        self.request_index = request_index
        self.restart = restart
        self.plant = request.plant
        self.options = request.options
        self.rng = np.random.default_rng(
            request.options.seed + 104729 * restart
        )
        self.evaluator = _GainEvaluator(
            request.plant, segments, plan, request.spec, horizon
        )
        self.stage_a = _StageA(self.evaluator, request.options)
        self.batched_a = _BatchedStageA(self.stage_a)
        self.gains: np.ndarray | None = None
        self.refined: np.ndarray | None = None
        self.design: ControllerDesign | None = None


def _design_lockstep_group(
    requests: list[DesignRequest],
    indices: list[int],
    designs_out: list[ControllerDesign | None],
) -> None:
    units: list[_DesignUnit] = []
    for i in indices:
        request = requests[i]
        plant = request.plant
        options = request.options
        segments = build_segments(
            plant.a, plant.b, list(request.periods), list(request.delays)
        )
        plan = build_simulation_plan(
            plant.a,
            plant.b,
            plant.c,
            list(request.periods),
            list(request.delays),
            nsub=options.nsub,
        )
        horizon = options.horizon_factor * request.spec.deadline + plan.idle_gap
        for restart in range(options.restarts):
            units.append(
                _DesignUnit(i, restart, request, segments, plan, horizon)
            )
    options = units[0].options
    batch_eval = BatchGainEvaluator([unit.evaluator for unit in units])

    def stage_a_objective(positions_list):
        built = [
            unit.batched_a.gains_batch(positions)
            for unit, positions in zip(units, positions_list)
        ]
        results = batch_eval.evaluate([gains for gains, _bad in built])
        values = []
        for unit, (_gains, bad), result in zip(units, built, results):
            objective = result["objective"]
            objective[bad] = 4.0 * unit.evaluator.big
            values.append(objective)
        return values

    problems = [
        (
            unit.stage_a.lower,
            unit.stage_a.upper,
            unit.rng,
            unit.stage_a.default_seeds(),
        )
        for unit in units
    ]
    results_a = pso_minimize_many(stage_a_objective, problems, options.stage_a)

    for unit, result in zip(units, results_a):
        unit.gains = unit.stage_a.gains_for(result.best_position)
    for unit in units:
        if unit.gains is None:
            raise DesignInfeasibleError(
                f"no pole target is realizable for plant {unit.plant.name!r}"
            )

    if options.engine == "hybrid":
        refine_problems = []
        for unit in units:
            flat = unit.gains.reshape(-1)
            spread = 2.5 * np.abs(flat) + 0.5 * (np.abs(flat).mean() + 1e-9)
            refine_problems.append(
                (flat - spread, flat + spread, unit.rng, flat[None, :])
            )

        def stage_b_objective(positions_list):
            batches = [
                positions.reshape(-1, unit.evaluator.m, unit.evaluator.order)
                for unit, positions in zip(units, positions_list)
            ]
            return [
                result["objective"] for result in batch_eval.evaluate(batches)
            ]

        results_b = pso_minimize_many(
            stage_b_objective, refine_problems, options.stage_b
        )
        pairs = []
        for unit, result in zip(units, results_b):
            unit.refined = result.best_position.reshape(
                unit.evaluator.m, unit.evaluator.order
            )
            pairs.append(np.stack([unit.gains, unit.refined]))
        comparisons = batch_eval.evaluate(pairs)
        for unit, both in zip(units, comparisons):
            if both["objective"][1] <= both["objective"][0]:
                unit.gains = unit.refined

    finals = batch_eval.evaluate([unit.gains[None] for unit in units])
    for unit, result in zip(units, finals):
        unit.design = ControllerDesign(
            gains=unit.gains,
            feedforward=result["feedforward"][0],
            settling=float(result["settling"][0]),
            u_peak=float(result["u_peak"][0]),
            spectral_radius=float(result["rho"][0]),
            objective=float(result["objective"][0]),
            n_evaluations=unit.evaluator.n_evaluations,
            engine=options.engine,
        )

    by_request: dict[int, list[_DesignUnit]] = {}
    for unit in units:
        by_request.setdefault(unit.request_index, []).append(unit)
    for i, request_units in by_request.items():
        # Serial restarts share one evaluator, so each restart's design
        # records the cumulative evaluation count up to that restart.
        best: ControllerDesign | None = None
        cumulative = 0
        for unit in request_units:
            cumulative += unit.evaluator.n_evaluations
            unit.design.n_evaluations = cumulative
            if best is None or unit.design.objective < best.objective:
                best = unit.design
        designs_out[i] = best


def design_controllers_batch(
    requests: list[DesignRequest],
) -> list[ControllerDesign]:
    """Design controllers for many problems at once, serial-identical.

    Problems whose engines support the lockstep path (``hybrid`` and
    ``seeded``) are grouped by swarm budget and advanced together; the
    rest fall back to per-problem :func:`design_controller` calls.  The
    returned designs — gains, feedforwards, diagnostics and evaluation
    counts — are bitwise identical to serial ``design_controller``
    results for the same requests.
    """
    for request in requests:
        options = request.options
        if options.engine not in ("hybrid", "seeded", "uniform", "poles"):
            raise ControlError(f"unknown design engine {options.engine!r}")
        if options.restarts < 1:
            raise ControlError(
                f"restarts must be >= 1, got {options.restarts}"
            )
    designs: list[ControllerDesign | None] = [None] * len(requests)
    groups: dict[tuple, list[int]] = {}
    for i, request in enumerate(requests):
        options = request.options
        if options.engine not in ("hybrid", "seeded"):
            designs[i] = design_controller(
                request.plant,
                list(request.periods),
                list(request.delays),
                request.spec,
                options,
            )
            continue
        key = (options.engine, options.restarts, options.stage_a, options.stage_b)
        groups.setdefault(key, []).append(i)
    for indices in groups.values():
        _design_lockstep_group(requests, indices, designs)
    return designs
