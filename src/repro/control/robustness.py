"""Execution-time jitter robustness.

The paper's timing model (its Fig. 3) notes the actual execution time
``E_ac`` is at most the WCET ``E_wc``; the schedule's *sampling periods*
are fixed by the static time-triggered table (WCET-sized slots), but the
*actuation instant* of each task moves earlier when the task finishes
early, i.e. the sensing-to-actuation delay varies in ``(0, E_wc]`` at
run time.  Controllers are designed against the WCET delays — this
module measures what jitter does to them:

* Monte-Carlo runs with per-task-instance random delays
  ``tau = jitter_factor * E_wc`` for ``jitter_factor ~ U(lo, 1]``;
* settling-time statistics and band-violation checks across runs.

A well-behaved design should degrade gracefully (early actuation gives
*fresher* control, but it also changes the inter-sample phasing the
holistic design optimized for).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ControlError
from .design import ControllerDesign, TrackingSpec
from .discretize import zoh_delayed
from .lti import LtiPlant
from .metrics import settling_time_of_trajectory

#: Number of quantization levels for the jitter factor; discretization
#: matrices are cached per level so Monte-Carlo runs stay cheap.
JITTER_LEVELS = 8


@dataclass
class JitterReport:
    """Monte-Carlo outcome of jittered execution."""

    nominal_settling: float
    settling_samples: np.ndarray
    u_peak_samples: np.ndarray
    band_violation_after_settle: int

    @property
    def worst_settling(self) -> float:
        """Worst settling time across jittered runs."""
        return float(np.max(self.settling_samples))

    @property
    def mean_settling(self) -> float:
        """Mean settling time across jittered runs."""
        return float(np.mean(self.settling_samples))

    def degradation(self) -> float:
        """Relative worst-case degradation vs. the nominal design."""
        if self.nominal_settling <= 0:
            return 0.0
        return self.worst_settling / self.nominal_settling - 1.0


def evaluate_jitter(
    plant: LtiPlant,
    design: ControllerDesign,
    periods: list[float],
    delays: list[float],
    spec: TrackingSpec,
    jitter_floor: float = 0.5,
    n_runs: int = 24,
    horizon_factor: float = 2.2,
    seed: int = 2018,
) -> JitterReport:
    """Monte-Carlo robustness of a design under actuation jitter.

    Parameters
    ----------
    plant, design, periods, delays, spec:
        The designed closed loop and its nominal timing (``delays`` are
        the WCET-based sensing-to-actuation delays).
    jitter_floor:
        Actual execution time is uniform in
        ``[jitter_floor * E_wc, E_wc]``.
    n_runs:
        Number of Monte-Carlo trajectories.
    """
    if not 0 < jitter_floor <= 1:
        raise ControlError(f"jitter_floor must be in (0, 1], got {jitter_floor}")
    if n_runs < 1:
        raise ControlError(f"n_runs must be >= 1, got {n_runs}")
    m = len(periods)
    if design.gains.shape[0] != m:
        raise ControlError("design does not match the timing pattern")

    rng = np.random.default_rng(seed)
    levels = np.linspace(jitter_floor, 1.0, JITTER_LEVELS)
    # Cache (Ad, B1, B2) per (phase, level): tau_level = level * delay.
    cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    for j in range(m):
        for level_index, level in enumerate(levels):
            tau = min(level * delays[j], periods[j])
            cache[(j, level_index)] = zoh_delayed(plant.a, plant.b, periods[j], tau)

    x_eq, u_eq = plant.equilibrium(spec.y0)
    horizon = horizon_factor * spec.deadline + periods[-1]
    n_steps = max(1, int(np.ceil(horizon / sum(periods)))) * m
    gap = periods[-1]

    settling = np.empty(n_runs)
    u_peaks = np.empty(n_runs)
    violations = 0
    for run in range(n_runs):
        x = x_eq.copy()
        u_prev = u_eq
        times = [0.0]
        outputs = [float(plant.c @ x)]
        t = 0.0
        u_peak = 0.0
        for step in range(n_steps):
            phase = step % m
            level_index = int(rng.integers(0, JITTER_LEVELS))
            ad, b1, b2 = cache[(phase, level_index)]
            u = float(design.gains[phase] @ x + design.feedforward[phase] * spec.r)
            u_peak = max(u_peak, abs(u))
            x = ad @ x + b1 * u_prev + b2 * u
            u_prev = u
            t += periods[phase]
            times.append(t)
            outputs.append(float(plant.c @ x))
        settle = settling_time_of_trajectory(
            np.asarray(times), np.asarray(outputs), spec.r, spec.band
        )
        settling[run] = settle + gap if np.isfinite(settle) else np.inf
        u_peaks[run] = u_peak
        if np.isfinite(settle):
            tail = np.asarray(outputs)[np.asarray(times) > settle]
            if np.any(np.abs(tail - spec.r) > spec.band * (1 + 1e-9)):
                violations += 1

    return JitterReport(
        nominal_settling=design.settling,
        settling_samples=settling,
        u_peak_samples=u_peaks,
        band_violation_after_settle=violations,
    )
