"""repro — reproduction of "Cache-Aware Task Scheduling for Maximizing
Control Performance" (Chang, Roy, Hu, Chakraborty; DATE 2018).

The library implements the paper's complete stack from scratch:

* an instruction-cache / WCET substrate (:mod:`repro.cache`,
  :mod:`repro.program`, :mod:`repro.wcet`) that regenerates the paper's
  Table I exactly;
* a discrete-time control substrate with non-uniform sampling,
  sensing-to-actuation delays and the holistic lifted controller design
  (:mod:`repro.control`);
* the schedule model, timing derivation, feasibility constraints and
  the hybrid schedule-space search (:mod:`repro.sched`);
* the automotive case study (:mod:`repro.apps`), the two-stage
  co-design facade (:mod:`repro.core`), the pluggable search-strategy
  registry (:mod:`repro.sched.strategies`) and the unified study API
  with persisted run reports (:mod:`repro.study`);
* the paper's named extensions: multi-core partitioning
  (:mod:`repro.multicore`) and interleaved schedules
  (:mod:`repro.sched.interleaved`).

Quickstart::

    from repro import build_case_study, PeriodicSchedule

    case = build_case_study()
    problem = case.evaluator()
    round_robin = problem.evaluate(PeriodicSchedule.round_robin(3))
    cache_aware = problem.evaluate(PeriodicSchedule.of(3, 2, 3))
    print(round_robin.overall, "->", cache_aware.overall)

Every paper artifact has a regeneration entry point:
``python -m repro.experiments all``.
"""

from .apps import build_case_study
from .cache import CacheConfig, InstructionCache
from .control import (
    ControllerDesign,
    DesignOptions,
    LtiPlant,
    TrackingSpec,
    design_controller,
)
from .core import CodesignProblem, ControlApplication
from .errors import ReproError
from .program import Program, ProgramBuilder, make_control_program
from .sched import (
    EngineOptions,
    HybridOptions,
    InterleavedSchedule,
    PeriodicSchedule,
    ScheduleEvaluator,
    SearchEngine,
    StrategySpec,
    available_strategies,
    derive_timing,
    enumerate_idle_feasible,
    exhaustive_search,
    get_strategy,
    hybrid_search,
    register_strategy,
)
from .platform import Platform, paper_platform
from .study import RunReport, Study
from .units import Clock
from .wcet import (
    analyze_task_wcets,
    available_wcet_models,
    get_wcet_model,
    register_wcet_model,
)

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "Clock",
    "CodesignProblem",
    "ControlApplication",
    "ControllerDesign",
    "DesignOptions",
    "EngineOptions",
    "HybridOptions",
    "InstructionCache",
    "InterleavedSchedule",
    "LtiPlant",
    "PeriodicSchedule",
    "Platform",
    "Program",
    "ProgramBuilder",
    "ReproError",
    "RunReport",
    "ScheduleEvaluator",
    "SearchEngine",
    "StrategySpec",
    "Study",
    "TrackingSpec",
    "analyze_task_wcets",
    "available_strategies",
    "available_wcet_models",
    "build_case_study",
    "derive_timing",
    "design_controller",
    "enumerate_idle_feasible",
    "exhaustive_search",
    "get_strategy",
    "get_wcet_model",
    "hybrid_search",
    "make_control_program",
    "paper_platform",
    "register_strategy",
    "register_wcet_model",
    "__version__",
]
