"""Unicode line plots for step-response figures (Fig. 6 replacement)."""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError


class AsciiPlot:
    """A fixed-size character canvas with data-space mapping."""

    def __init__(
        self,
        x_range: tuple[float, float],
        y_range: tuple[float, float],
        width: int = 72,
        height: int = 16,
    ) -> None:
        if width < 8 or height < 4:
            raise ConfigurationError("plot must be at least 8x4 characters")
        if x_range[1] <= x_range[0] or y_range[1] <= y_range[0]:
            raise ConfigurationError("plot ranges must be non-degenerate")
        self.x_range = x_range
        self.y_range = y_range
        self.width = width
        self.height = height
        self._cells = [[" "] * width for _ in range(height)]

    def _col(self, x: float) -> int | None:
        lo, hi = self.x_range
        if not lo <= x <= hi:
            return None
        return min(self.width - 1, int((x - lo) / (hi - lo) * (self.width - 1)))

    def _row(self, y: float) -> int | None:
        lo, hi = self.y_range
        if not lo <= y <= hi:
            return None
        frac = (y - lo) / (hi - lo)
        return min(self.height - 1, int((1.0 - frac) * (self.height - 1)))

    def add_series(self, xs: np.ndarray, ys: np.ndarray, marker: str) -> None:
        """Overlay one series; later series overwrite earlier cells."""
        xs = np.asarray(xs, dtype=float).reshape(-1)
        ys = np.asarray(ys, dtype=float).reshape(-1)
        if xs.shape != ys.shape:
            raise ConfigurationError("series x and y must have equal length")
        for x, y in zip(xs, ys):
            if math.isnan(y):
                continue
            col = self._col(x)
            row = self._row(min(max(y, self.y_range[0]), self.y_range[1]))
            if col is not None and row is not None:
                self._cells[row][col] = marker

    def add_hline(self, y: float, marker: str = "-") -> None:
        """Horizontal guide line (e.g. the settling band edges)."""
        row = self._row(y)
        if row is None:
            return
        for col in range(self.width):
            if self._cells[row][col] == " ":
                self._cells[row][col] = marker

    def render(self, title: str = "", y_label: str = "", x_label: str = "") -> str:
        """Render with a simple frame and min/max annotations."""
        lines = []
        if title:
            lines.append(title)
        if y_label:
            lines.append(f"[y: {y_label}]")
        top = f"{self.y_range[1]:.4g}".rjust(10)
        bottom = f"{self.y_range[0]:.4g}".rjust(10)
        for i, row in enumerate(self._cells):
            prefix = top if i == 0 else (bottom if i == self.height - 1 else " " * 10)
            lines.append(prefix + " |" + "".join(row))
        axis = " " * 10 + " +" + "-" * self.width
        lines.append(axis)
        label = f"{self.x_range[0]:.4g}".ljust(self.width // 2)
        label += f"{self.x_range[1]:.4g}".rjust(self.width - len(label))
        lines.append(" " * 12 + label + (f"  [x: {x_label}]" if x_label else ""))
        return "\n".join(lines)


def plot_series(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    title: str = "",
    y_label: str = "",
    x_label: str = "",
    width: int = 72,
    height: int = 16,
    markers: str = "*o+x#@",
) -> str:
    """Plot several named series on one auto-ranged canvas with a legend."""
    if not series:
        raise ConfigurationError("need at least one series")
    all_x = np.concatenate([np.asarray(xs, dtype=float).reshape(-1) for xs, _ in series.values()])
    all_y = np.concatenate([np.asarray(ys, dtype=float).reshape(-1) for _, ys in series.values()])
    finite_y = all_y[np.isfinite(all_y)]
    if finite_y.size == 0:
        raise ConfigurationError("series contain no finite values")
    y_lo, y_hi = float(finite_y.min()), float(finite_y.max())
    if y_lo == y_hi:
        y_lo, y_hi = y_lo - 1.0, y_hi + 1.0
    pad = 0.05 * (y_hi - y_lo)
    plot = AsciiPlot(
        (float(all_x.min()), float(all_x.max())),
        (y_lo - pad, y_hi + pad),
        width,
        height,
    )
    legend = []
    for (name, (xs, ys)), marker in zip(series.items(), markers):
        plot.add_series(np.asarray(xs), np.asarray(ys), marker)
        legend.append(f"{marker} = {name}")
    rendered = plot.render(title, y_label, x_label)
    return rendered + "\n" + "    ".join(legend)
