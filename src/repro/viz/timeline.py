"""Schedule timeline rendering (the paper's Figs. 2 and 4).

Draws one schedule hyperperiod as a labelled strip of task executions,
marking cold/warm cache states and each application's sampling periods.
"""

from __future__ import annotations

from ..sched.schedule import PeriodicSchedule
from ..sched.timing import derive_timing
from ..units import Clock
from ..wcet.results import TaskWcets


def render_schedule_timeline(
    schedule: PeriodicSchedule,
    wcets: list[TaskWcets],
    clock: Clock,
    width: int = 96,
) -> str:
    """Render one hyperperiod as an ASCII strip.

    Each task occupies a width proportional to its WCET; cold tasks are
    drawn with ``#`` (capital app letter tag), warm (cache-reuse) tasks
    with ``=``.  A second block lists each application's sampling
    periods and delays (paper eq. (6)-(8)).
    """
    timing = derive_timing(schedule, wcets, clock)
    total = timing.hyperperiod

    segments: list[tuple[str, float, bool]] = []
    for i, m in enumerate(schedule.counts):
        for position in range(1, m + 1):
            duration = clock.cycles_to_seconds(wcets[i].wcet_cycles(position))
            segments.append((f"C{i + 1}", duration, position == 1))

    strip = []
    labels = []
    for name, duration, cold in segments:
        cells = max(3, int(round(duration / total * width)))
        fill = "#" if cold else "="
        block = fill * cells
        tag = f"{name}{'c' if cold else 'w'}"
        strip.append(block)
        labels.append(tag.center(cells)[:cells])
    lines = [
        f"schedule {schedule}: one hyperperiod = {total * 1e3:.3f} ms "
        f"({sum(schedule.counts)} tasks)",
        "|" + "|".join(strip) + "|",
        " " + " ".join(labels),
        "  # = cold cache (first task of a burst), = = cache reuse",
        "",
    ]
    for i, app_timing in enumerate(timing.apps):
        periods = ", ".join(f"{h * 1e6:.2f}" for h in app_timing.periods)
        delays = ", ".join(f"{t * 1e6:.2f}" for t in app_timing.delays)
        lines.append(
            f"C{i + 1}: sampling periods [{periods}] us; "
            f"sensing-to-actuation delays [{delays}] us; "
            f"max idle {app_timing.max_period * 1e3:.3f} ms"
        )
    return "\n".join(lines)
