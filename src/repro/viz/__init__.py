"""Plain-text visualization: response plots and schedule timelines.

The reproduction environment is offline (no matplotlib), so Figure 6 and
the schedule timing diagrams (Figs. 2/4) are rendered as Unicode/ASCII
art plus CSV dumps that external tooling can plot.
"""

from .ascii_plot import AsciiPlot, plot_series
from .timeline import render_schedule_timeline

__all__ = ["AsciiPlot", "plot_series", "render_schedule_timeline"]
