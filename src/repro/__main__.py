"""Top-level CLI: ``python -m repro <command>``.

Commands
--------
``info``
    Case-study summary: Table I WCETs, Table II parameters, space size.
``evaluate --schedule 3,2,3``
    Evaluate one periodic schedule (timing, per-app settling, P_all).
``strategies``
    List the registered search strategies (the strategy registry).
``allocators``
    List the registered partition allocators (the allocator registry).
``models``
    List the registered WCET models (the platform registry).
``experiments``
    List the registered paper-artifact experiments (the experiment
    registry).
``experiment <name> [--json] [--run-dir DIR] [--out DIR]``
    Regenerate one paper artifact through the experiment registry:
    structured, schema-versioned ``ExperimentReport`` JSON with
    ``--json``, persisted and resumed under ``--run-dir``.
    (``python -m repro.experiments <name>`` remains as a deprecated
    shim.)
``lint [--format json] [--checkers a,b] [--list] [paths...]``
    Run the repo-specific static-analysis suite (cache-key soundness,
    determinism, registry contracts, exception hygiene; rules
    RPL001-RPL004 via the lint-checker registry).  Exits 1 on findings.
``search [--strategy hybrid] [--starts 4,2,2 1,2,1]``
    Run a schedule-space search on the case study and print the result.
``timeline --schedule 2,2,2``
    Render the schedule's timing diagram (paper Figs. 2/4).
``simulate [--stress 1.46] [--horizon 1.0] [--no-adapt]``
    Simulate feedback scheduling on the case study: a load transient
    plays through the discrete-event simulator (:mod:`repro.sim`) and
    the feedback loop re-optimizes on every load change through the
    ``online`` strategy (``--adapt-strategy`` picks another,
    ``--no-adapt`` holds the static optimum).  Shares the search flag
    set; ``--json`` prints the SimReport, which is byte-identical
    across reruns with the same seed/scenario/platform.
``batch [--suite-size 4] [--strategy hybrid] [--cores K]``
    Sweep a suite of synthesized scenarios through the search engine
    (``--cores >= 2`` makes every scenario a multicore co-design,
    ``--jitter-platform`` draws a fresh cache/clock per scenario,
    ``--dynamic`` gives every scenario a synthesized load transient
    simulated after the search).
``multicore [--cores 2] [--strategy exhaustive] [--shared-cache]``
    Partition the case study across cores and jointly optimize the
    partition and the per-core schedules — private caches by default,
    or one way-partitioned shared cache with ``--shared-cache`` (the
    way allocation is then co-optimized too).  ``--allocator`` picks a
    registered partition allocator (``exhaustive`` ground truth, or
    the ``greedy``/``scored`` heuristics for many cores); ``--apps N``
    replicates the case-study workload so ``--cores`` can exceed the
    three paper applications.
``serve [--host --port --jobs --workers --queue-size --run-dir]``
    Run the search service: a long-lived asyncio HTTP job queue over
    the same ``Study`` machinery, with one shared persistent
    evaluation cache and run directory across all jobs (every job
    warm-starts from every prior job).  SIGINT/SIGTERM drain
    gracefully; a restarted server resumes its ledger from disk.
``submit [--server URL] [--strategy hybrid] [--starts 4,2,2] ...``
    Submit a search job to a running server; validation happens
    server-side (an unknown strategy fails over HTTP with the
    registered list, exit code 2 like a direct run).
``status [JOB] [--server URL] [--json]``
    One job's record (or the full job listing without JOB).
``watch JOB [--server URL] [--json]``
    Stream a job's progress events live until it finishes
    (``--json`` prints the raw NDJSON wire messages); a failed job
    exits 2 with its error.

``search``, ``batch`` and ``multicore`` all run through the unified
:class:`repro.study.Study` facade and share one flag set:
``--strategy`` picks any registered search strategy (``--method`` is
its deprecated alias), ``--json`` prints the structured
:class:`~repro.study.RunReport` artifact(s) to stdout instead of
tables, ``--run-dir DIR`` persists every report as JSON (matching
reruns resume from disk), ``--workers N`` evaluates candidates on
worker processes and ``--cache-dir DIR`` persists every evaluation so
reruns warm-start.  The platform flags — ``--wcet-model``,
``--cache-sets``, ``--cache-ways``, ``--miss-cycles``,
``--clock-mhz`` — rebuild the problem on a different execution
platform (see ``python -m repro models``); the platform is recorded in
every report and keyed into the persistent evaluation cache.

Long runs are observable: ``batch`` and ``experiment`` render a live
progress line on stderr from the engines' typed progress events
(automatic on a TTY; ``--progress`` forces it, e.g. under a pager).

The controller-design budget follows ``REPRO_PROFILE``.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings

from .apps import build_case_study
from .core.report import format_seconds_ms, render_table
from .errors import ReproError
from .experiments.profiles import current_profile, design_options_for_profile
from .sched import PeriodicSchedule, enumerate_idle_feasible
from .sched.strategies import (
    available_strategies,
    get_strategy,
    strategy_description,
)
from .units import Clock
from .viz import render_schedule_timeline


def _parse_schedule(text: str) -> PeriodicSchedule:
    try:
        counts = tuple(int(part) for part in text.split(","))
        return PeriodicSchedule(counts)
    except (ValueError, ReproError) as exc:
        raise SystemExit(f"invalid schedule {text!r}: {exc}") from exc


def cmd_info(_args: argparse.Namespace) -> None:
    case = build_case_study()
    clock = Clock(20e6)
    rows = []
    for app in case.apps:
        rows.append(
            [
                app.name,
                f"{clock.cycles_to_us(app.wcets.cold_cycles):.2f} us",
                f"{clock.cycles_to_us(app.wcets.warm_cycles):.2f} us",
                f"{app.weight:.1f}",
                f"{app.spec.deadline * 1e3:.1f} ms",
                f"{app.max_idle * 1e3:.1f} ms",
            ]
        )
    print(
        render_table(
            ["App", "cold WCET", "warm WCET", "weight", "deadline", "max idle"],
            rows,
            title="DATE'18 case study",
        )
    )
    space = enumerate_idle_feasible(case.apps, case.clock)
    print(f"\nidle-feasible periodic schedules: {len(space)}")
    print(f"design profile: {current_profile()}")


def cmd_evaluate(args: argparse.Namespace) -> None:
    schedule = _parse_schedule(args.schedule)
    case = build_case_study()
    evaluator = case.evaluator(design_options_for_profile())
    evaluation = evaluator.evaluate(schedule)
    rows = []
    for app_eval, app in zip(evaluation.apps, case.apps):
        periods = ", ".join(f"{h * 1e6:.2f}" for h in app_eval.timing.periods)
        rows.append(
            [
                app_eval.app_name,
                f"[{periods}] us",
                format_seconds_ms(app_eval.settling, 2),
                f"{app_eval.performance:.3f}",
                "yes" if app_eval.settling <= app.spec.deadline else "NO",
            ]
        )
    print(
        render_table(
            ["App", "sampling periods", "settling", "P_i", "deadline met"],
            rows,
            title=f"schedule {schedule}",
        )
    )
    print(f"\nP_all = {evaluation.overall:.4f}  feasible: {evaluation.feasible}")


def cmd_strategies(_args: argparse.Namespace) -> None:
    rows = []
    for name in available_strategies():
        strategy = get_strategy(name)
        rows.append(
            [name, strategy.options_type.__name__, strategy_description(strategy)]
        )
    print(
        render_table(
            ["strategy", "options", "description"],
            rows,
            title="registered search strategies",
        )
    )
    print(
        "\nregister your own with @repro.sched.strategies.register_strategy"
    )


def cmd_allocators(_args: argparse.Namespace) -> None:
    from .multicore.allocators import (
        allocator_description,
        available_allocators,
        get_allocator,
    )

    rows = []
    for name in available_allocators():
        allocator = get_allocator(name)
        rows.append(
            [
                name,
                allocator.options_type.__name__,
                allocator_description(allocator),
            ]
        )
    print(
        render_table(
            ["allocator", "options", "description"],
            rows,
            title="registered partition allocators",
        )
    )
    print(
        "\nregister your own with @repro.multicore.register_allocator"
    )


def cmd_models(_args: argparse.Namespace) -> None:
    from .wcet.models import (
        available_wcet_models,
        get_wcet_model,
        model_description,
    )

    rows = []
    for name in available_wcet_models():
        model = get_wcet_model(name)
        rows.append([name, model_description(model)])
    print(
        render_table(
            ["model", "description"],
            rows,
            title="registered WCET models",
        )
    )
    print("\nregister your own with @repro.wcet.register_wcet_model")


def cmd_lint(args: argparse.Namespace) -> None:
    from pathlib import Path

    from .lint import (
        available_checkers,
        checker_description,
        default_paths,
        get_checker,
        render_json,
        render_text,
        run_lint,
    )

    if args.list:
        rows = []
        for name in available_checkers():
            checker = get_checker(name)
            rows.append([name, checker.code, checker_description(checker)])
        print(
            render_table(
                ["checker", "rule", "description"],
                rows,
                title="registered lint checkers",
            )
        )
        print("\nregister your own with @repro.lint.register_checker")
        return
    checkers = (
        tuple(part.strip() for part in args.checkers.split(",") if part.strip())
        if args.checkers
        else None
    )
    paths = [Path(p) for p in args.paths] if args.paths else default_paths()
    findings = run_lint(paths, checkers=checkers)
    names = list(checkers) if checkers is not None else list(available_checkers())
    if args.format == "json":
        print(render_json(findings, names))
    else:
        print(render_text(findings))
    if findings:
        raise SystemExit(1)


def cmd_experiments(_args: argparse.Namespace) -> None:
    from .experiments import (
        available_experiments,
        experiment_description,
        get_experiment,
    )

    rows = []
    for name in available_experiments():
        experiment = get_experiment(name)
        rows.append([name, experiment_description(experiment)])
    print(
        render_table(
            ["experiment", "description"],
            rows,
            title="registered experiments",
        )
    )
    print(
        "\nrun one with `python -m repro experiment <name>`; "
        "register your own with @repro.experiments.register_experiment"
    )


def _progress_line(args: argparse.Namespace):
    """The progress renderer the flags ask for (or ``None``).

    Auto-enables on a TTY stderr; ``--progress`` forces it on for
    plain streams too, where the renderer itself falls back to
    one completion line per scenario instead of in-place redraws.
    """
    import sys as _sys

    from .study.progress import ProgressLine

    if getattr(args, "progress", False) or _sys.stderr.isatty():
        return ProgressLine()
    return None


def cmd_experiment(args: argparse.Namespace) -> None:
    from .experiments import ExperimentRequest, get_experiment, run_experiment
    from .experiments.registry import (
        effective_out,
        run_and_render,
        validate_request,
    )

    spec = get_experiment(args.name)  # fail fast before any output
    progress = _progress_line(args)
    if progress is not None:
        progress.set_prefix(args.name)
    # Partial platform flags fill unset fields from the experiment's
    # own default geometry (shared_cache needs ways to partition, so
    # e.g. --clock-mhz alone must not degrade it to the direct-mapped
    # paper cache).  design_options stays None (each experiment
    # resolves the profile itself), so CLI and library runs of one
    # experiment share their persisted --run-dir artifacts.
    request = ExperimentRequest(
        platform=_platform_from_args(
            args, shared=callable(getattr(spec, "default_platform", None))
        ),
        strategy=_resolve_strategy(args),
        workers=args.workers,
        cache_dir=args.cache_dir,
        max_count_per_core=args.max_count_per_core,
        out=args.out,
        on_event=progress,
    )
    validate_request(args.name, request)  # reject bad flags before output
    try:
        if args.json:
            report = run_experiment(args.name, request, run_dir=args.run_dir)
            out = effective_out(args.name, request)
            if out is not None:
                # Still write the output files; --json keeps stdout pure.
                get_experiment(args.name).write_outputs(report, out)
            print(report.to_json())
        else:
            print(f"[profile: {current_profile()}]")
            print(run_and_render(args.name, request, run_dir=args.run_dir))
    finally:
        if progress is not None:
            progress.close()


def _platform_from_args(
    args: argparse.Namespace, shared: bool = False
):
    """The :class:`~repro.platform.Platform` the flags describe.

    ``None`` when every flag is at its default and no shared cache is
    requested — the paper platform, leaving digests/reports identical
    to runs that never declared a platform.  ``--shared-cache`` without
    explicit geometry defaults to
    :func:`~repro.platform.shared_paper_platform` (the paper capacity
    as 32 sets x 4 ways), since the paper's direct-mapped cache has no
    ways to partition.
    """
    from dataclasses import replace

    from .cache.config import CacheConfig
    from .platform import Platform, shared_paper_platform

    flags = (
        args.wcet_model,
        args.cache_sets,
        args.cache_ways,
        args.miss_cycles,
        args.clock_mhz,
    )
    if not shared and all(value is None for value in flags):
        return None
    default = shared_paper_platform().cache if shared else CacheConfig()
    cache = replace(
        default,
        n_sets=args.cache_sets if args.cache_sets is not None else default.n_sets,
        associativity=(
            args.cache_ways if args.cache_ways is not None else default.associativity
        ),
        miss_cycles=(
            args.miss_cycles if args.miss_cycles is not None else default.miss_cycles
        ),
    )
    clock = Clock(args.clock_mhz * 1e6) if args.clock_mhz is not None else Clock(20e6)
    return Platform(
        cache=cache, clock=clock, wcet_model=args.wcet_model or "static"
    )


def _resolve_strategy(args: argparse.Namespace) -> str | None:
    """``--strategy``, honoring the deprecated ``--method`` alias."""
    if getattr(args, "method", None):
        warnings.warn(
            "--method is deprecated; use --strategy",
            DeprecationWarning,
            stacklevel=2,
        )
        if args.strategy is None:
            return args.method
    return args.strategy


def _engine_options(args: argparse.Namespace):
    from .sched.engine import EngineOptions

    return EngineOptions(
        workers=args.workers,
        cache_dir=args.cache_dir,
        eval_backend=args.eval_backend,
    )


def _run_study(study, args: argparse.Namespace):
    """Run a study with the live progress line the flags ask for."""
    progress = _progress_line(args)
    try:
        return study.run(on_event=progress)
    finally:
        if progress is not None:
            progress.close()


def _format_schedule_counts(counts: list[int]) -> str:
    return "(" + ", ".join(str(m) for m in counts) + ")"


def _format_report_schedule(report) -> str:
    """One cell for the best schedule — per-core list for multicore."""
    if report.cores is not None:
        return " + ".join(
            _format_schedule_counts(core["schedule"]) for core in report.cores
        )
    return _format_schedule_counts(report.best_schedule)


def cmd_search(args: argparse.Namespace) -> None:
    from .study import Study

    starts = [_parse_schedule(s) for s in args.starts] if args.starts else None
    study = Study.from_case_study(
        design_options_for_profile(),
        strategy=_resolve_strategy(args),
        starts=starts,
        platform=_platform_from_args(args),
        engine_options=_engine_options(args),
        run_dir=args.run_dir,
    )
    report = _run_study(study, args)[0]
    if args.json:
        print(report.to_json())
        return
    print(f"strategy: {report.strategy}  backend: {report.backend}")
    rows = [
        [
            app["name"],
            format_seconds_ms(app["settling"], 2),
            f"{app['performance']:.3f}",
        ]
        for app in report.apps
    ]
    print(
        render_table(
            ["App", "settling", "P_i"],
            rows,
            title=f"best schedule {_format_report_schedule(report)}",
        )
    )
    print(
        f"best: {_format_report_schedule(report)}  P_all = {report.overall:.4f}"
    )
    stats = report.engine_stats
    print(
        f"engine: {stats['n_computed']} computed, "
        f"{stats['n_memo_hits']} memo hits, {stats['n_disk_hits']} disk hits"
    )


def cmd_simulate(args: argparse.Namespace) -> None:
    from .sim import SimReport, load_transient
    from .study import Study

    platform = _platform_from_args(args)
    case = build_case_study(platform=platform)
    profile = load_transient(
        len(case.apps),
        horizon=args.horizon,
        stress=args.stress,
        disturb_at=args.disturb_at,
        recover_at=args.recover_at,
        adapt=not args.no_adapt,
        adapt_strategy=args.adapt_strategy,
    )
    study = Study.from_case_study(
        design_options_for_profile(),
        strategy=_resolve_strategy(args),
        platform=platform,
        dynamic=profile,
        engine_options=_engine_options(args),
        run_dir=args.run_dir,
        name="casestudy-sim",
    )
    report = _run_study(study, args)[0]
    sim = SimReport.from_dict(report.sim)
    if args.json:
        # The SimReport is the simulation artifact: wall-clock-free, so
        # reruns with the same seed/scenario/platform are byte-identical
        # (the enclosing RunReport persists under --run-dir).
        print(sim.to_json())
        return
    timeline_rows = []
    for entry in sim.timeline:
        kind = entry["event"]
        if kind == "ScheduleSwitch":
            detail = (
                f"-> {tuple(entry['counts'])} ({entry['reason']})"
            )
        elif kind == "LoadDisturbance":
            detail = "demands " + str(tuple(entry["demands"]))
        elif kind == "PlantModeChange":
            detail = f"{entry['app']} x{entry['factor']:g}"
        else:
            detail = entry.get("app", "")
        timeline_rows.append([f"{entry['time']:.4f}", kind, detail])
    print(
        render_table(
            ["t (s)", "event", "detail"],
            timeline_rows,
            title=f"simulated timeline (strategy {sim.strategy}, "
            f"adapt={'on' if sim.adapt else 'off'})",
        )
    )
    segment_rows = [
        [
            f"{segment['start']:.4f}-{segment['end']:.4f}",
            _format_schedule_counts(segment["schedule"]),
            "(" + ", ".join(f"{d:g}" for d in segment["demands"]) + ")",
            "yes" if segment["feasible"] else "no",
            f"{segment['cost']:.4f}",
        ]
        for segment in sim.segments
    ]
    print()
    print(
        render_table(
            ["interval (s)", "schedule", "demands", "feasible", "cost"],
            segment_rows,
            title="piecewise-constant segments",
        )
    )
    print(
        f"\nmean cost = {sim.mean_cost:.4f} over {sim.horizon:g} s"
        f"  adaptations: {sim.n_adaptations}"
        + (
            f" (strategy {sim.adapt_strategy})"
            if sim.adapt
            else " (adaptation disabled)"
        )
    )
    stats = report.engine_stats
    print(
        f"engine: {stats['n_requested']} requested = "
        f"{stats['n_computed']} computed + {stats['n_memo_hits']} memo + "
        f"{stats['n_disk_hits']} disk + {stats['n_duplicates']} duplicate"
    )


def cmd_batch(args: argparse.Namespace) -> None:
    from .study import Study

    study = Study.from_suite(
        args.suite_size,
        seed=args.seed,
        strategy=_resolve_strategy(args),
        design_options=design_options_for_profile(),
        n_cores=args.cores,
        platform=_platform_from_args(args, shared=args.shared_cache),
        jitter_platform=args.jitter_platform,
        shared_cache=args.shared_cache,
        allocator=args.allocator,
        dynamic=args.dynamic,
        engine_options=_engine_options(args),
        run_dir=args.run_dir,
    )
    reports = _run_study(study, args)
    if args.json:
        print(
            json.dumps(
                [report.to_dict() for report in reports], indent=2, sort_keys=True
            )
        )
        return
    dynamic = any(report.sim is not None for report in reports)
    rows = []
    for report in reports:
        stats = report.engine_stats
        row = [
            report.scenario,
            str(report.n_apps),
            str(report.n_space),
            _format_report_schedule(report),
            f"{report.overall:.4f}",
            str(stats["n_computed"]),
            str(stats["n_disk_hits"]),
            f"{report.wall_time:.2f} s",
        ]
        if dynamic:
            sim = report.sim or {}
            row.append(
                f"{sim['mean_cost']:.4f} ({len(sim['adaptations'])} adapt)"
                if sim
                else "-"
            )
        rows.append(row)
    headers = ["scenario", "apps", "space", "best schedule", "P_all",
               "computed", "disk hits", "wall time"]
    if dynamic:
        headers.append("sim mean cost")
    print(
        render_table(
            headers,
            rows,
            title=f"batch {reports[0].strategy} search "
                  f"({reports[0].backend} backend, {args.workers} workers)",
        )
    )
    total_wall = sum(r.wall_time for r in reports)
    print(f"\ntotal search time: {total_wall:.2f} s over {len(reports)} scenarios")


def cmd_multicore(args: argparse.Namespace) -> None:
    from .study import Study

    study = Study.from_case_study(
        design_options_for_profile(),
        strategy=_resolve_strategy(args),
        n_cores=args.cores,
        max_count_per_core=args.max_count_per_core,
        platform=_platform_from_args(args, shared=args.shared_cache),
        shared_cache=args.shared_cache,
        allocator=args.allocator,
        n_apps=args.apps,
        engine_options=_engine_options(args),
        run_dir=args.run_dir,
    )
    report = _run_study(study, args)[0]
    if args.json:
        print(report.to_json())
        return
    settling = {app["name"]: app["settling"] for app in report.apps}
    # --cores 1 degenerates to the single-core search, whose report has
    # a best schedule instead of a partition: render it as one core.
    cores = report.cores or [
        {
            "apps": [app["name"] for app in report.apps],
            "schedule": report.best_schedule,
        }
    ]
    shared = any(core.get("ways") is not None for core in cores)
    rows = []
    for core_index, core in enumerate(cores):
        row = [
            str(core_index),
            ", ".join(core["apps"]),
            _format_schedule_counts(core["schedule"]),
            ", ".join(
                f"{settling[name] * 1e3:.2f} ms" for name in core["apps"]
            ),
        ]
        if shared:
            row.insert(2, str(core["ways"]))
        rows.append(row)
    headers = ["core", "apps", "schedule", "settling"]
    if shared:
        headers.insert(2, "ways")
    cache_kind = "shared way-partitioned cache" if shared else "private caches"
    print(
        render_table(
            headers,
            rows,
            title=f"multicore co-design ({args.cores} cores, {cache_kind}, "
                  f"{report.backend} backend)",
        )
    )
    print(f"\nP_all = {report.overall:.4f}  cores used: {len(cores)}")
    if report.allocator is not None:
        n_partitions = report.search_stats.get("n_partitions")
        streamed = (
            f" ({n_partitions} partition(s) evaluated)"
            if n_partitions
            else ""
        )
        print(f"allocator: {report.allocator}{streamed}")
    stats = report.engine_stats
    print(
        f"engine: {stats['n_requested']} requested = "
        f"{stats['n_computed']} computed + {stats['n_memo_hits']} memo + "
        f"{stats['n_disk_hits']} disk + {stats['n_duplicates']} duplicate"
    )


def cmd_serve(args: argparse.Namespace) -> None:
    import asyncio

    from .serve.server import run_server

    try:
        asyncio.run(
            run_server(
                host=args.host,
                port=args.port,
                run_dir=args.run_dir,
                cache_dir=args.cache_dir,
                max_jobs=args.jobs,
                engine_workers=args.workers,
                queue_size=args.queue_size,
                job_timeout=args.job_timeout,
            )
        )
    except KeyboardInterrupt:
        # Platforms without loop signal handlers: the drain in
        # run_server's finally block already ran on the way out.
        pass


def _submit_spec(args: argparse.Namespace):
    """The :class:`~repro.serve.JobSpec` the submit flags describe.

    Deliberately *not* validated here — the server owns validation, so
    an unknown strategy fails over HTTP with the registry message.
    """
    from .serve.jobs import JobSpec

    platform = _platform_from_args(args, shared=args.shared_cache)
    starts = (
        tuple(_parse_schedule(text).counts for text in args.starts)
        if args.starts
        else None
    )
    return JobSpec(
        kind="suite" if args.suite_size is not None else "search",
        strategy=_resolve_strategy(args),
        starts=starts,
        n_starts=args.n_starts,
        seed=args.seed,
        n_cores=args.cores,
        max_count_per_core=args.max_count_per_core,
        shared_cache=args.shared_cache,
        allocator=args.allocator,
        suite_size=args.suite_size if args.suite_size is not None else 4,
        platform=platform.fingerprint() if platform is not None else None,
        eval_backend=args.eval_backend,
        resume=not args.no_resume,
    )


def cmd_submit(args: argparse.Namespace) -> None:
    from .serve.client import ServeClient

    record = ServeClient(args.server).submit(_submit_spec(args))
    if args.json:
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        return
    print(
        f"submitted {record.id} ({record.state}); follow it with "
        f"`python -m repro watch {record.id} --server {args.server}`"
    )


def cmd_status(args: argparse.Namespace) -> None:
    from .serve.client import ServeClient

    client = ServeClient(args.server)
    if args.job is None:
        records = client.jobs()
        if args.json:
            print(
                json.dumps(
                    [r.to_dict(include_reports=False) for r in records],
                    indent=2,
                    sort_keys=True,
                )
            )
            return
        rows = [
            [
                record.id,
                record.state,
                record.spec.kind,
                record.spec.strategy or "default",
                record.error or "",
            ]
            for record in records
        ]
        print(
            render_table(
                ["job", "state", "kind", "strategy", "error"],
                rows,
                title=f"jobs at {client.base_url}",
            )
        )
        return
    record = client.job(args.job)
    if args.json:
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        return
    print(f"{record.id}: {record.state}")
    if record.error:
        print(f"error: {record.error}")
    for report in record.reports or []:
        print(
            f"  {report['scenario']}: P_all = {report['overall']:.4f}"
            f"  feasible: {report['feasible']}"
        )


def _render_watch_event(event) -> str:
    """One human-readable line per streamed study/engine event."""
    from .sched.engine.events import BatchCompleted, BatchSubmitted
    from .study.events import (
        ScenarioFinished,
        ScenarioProgress,
        ScenarioResumed,
        ScenarioStarted,
        SimulationFinished,
        SimulationProgress,
    )

    if isinstance(event, ScenarioStarted):
        return (
            f"scenario {event.scenario} started "
            f"({event.strategy or 'default'}, {event.n_cores} core(s))"
        )
    if isinstance(event, ScenarioProgress):
        engine = event.engine
        if isinstance(engine, BatchCompleted):
            best = (
                f", best {engine.best_overall:.4f}"
                if engine.best_overall is not None
                else ""
            )
            return (
                f"scenario {event.scenario}: {engine.n_computed} computed / "
                f"{engine.n_requested} requested{best}"
            )
        if isinstance(engine, BatchSubmitted):
            return (
                f"scenario {event.scenario}: batch of {engine.n_batch} submitted"
            )
        return f"scenario {event.scenario}: {type(engine).__name__}"
    if isinstance(event, SimulationProgress):
        sim = event.sim
        return (
            f"scenario {event.scenario}: t={sim.time:.4f} "
            f"{type(sim).__name__}"
        )
    if isinstance(event, SimulationFinished):
        return (
            f"scenario {event.scenario} simulated: mean cost "
            f"{event.mean_cost:.4f}, {event.n_adaptations} adaptation(s)"
        )
    if isinstance(event, ScenarioResumed):
        return (
            f"scenario {event.scenario} resumed from disk "
            f"(P_all = {event.report.overall:.4f})"
        )
    if isinstance(event, ScenarioFinished):
        return (
            f"scenario {event.scenario} finished in {event.wall_time:.2f} s "
            f"(P_all = {event.report.overall:.4f})"
        )
    return type(event).__name__


def cmd_watch(args: argparse.Namespace) -> None:
    from .errors import ServeError
    from .serve.client import ServeClient
    from .serve.wire import TERMINAL_STATES, StatusMessage

    final_state = None
    final_error = None
    for message in ServeClient(args.server).watch(args.job):
        if args.json:
            print(message.to_json(), flush=True)
        elif isinstance(message, StatusMessage):
            line = f"[{message.job}] {message.state}"
            if message.error:
                line += f": {message.error}"
            print(line, flush=True)
        else:
            print(f"[{message.job}] {_render_watch_event(message.event)}",
                  flush=True)
        if isinstance(message, StatusMessage):
            final_state, final_error = message.state, message.error
    if final_state == "failed":
        raise ServeError(f"{args.job} failed: {final_error}")
    if final_state not in TERMINAL_STATES:
        raise ServeError(
            f"stream ended before {args.job} finished (server draining?)"
        )


def cmd_timeline(args: argparse.Namespace) -> None:
    schedule = _parse_schedule(args.schedule)
    case = build_case_study()
    print(
        render_schedule_timeline(
            schedule, [app.wcets for app in case.apps], case.clock
        )
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Cache-aware task scheduling for maximizing control performance.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="case-study summary")

    evaluate = sub.add_parser("evaluate", help="evaluate one schedule")
    evaluate.add_argument("--schedule", required=True, help="e.g. 3,2,3")

    sub.add_parser("strategies", help="list registered search strategies")

    sub.add_parser("allocators", help="list registered partition allocators")

    sub.add_parser("models", help="list registered WCET models")

    sub.add_parser("experiments", help="list registered experiments")

    lint = sub.add_parser(
        "lint",
        help="run the repo's AST invariant checkers (rules RPL001-RPL004)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to check (default: src/)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is the CI artifact)",
    )
    lint.add_argument(
        "--checkers",
        default=None,
        help="comma-separated checker names (default: all registered)",
    )
    lint.add_argument(
        "--list",
        action="store_true",
        help="list the registered checkers and exit",
    )

    experiment = sub.add_parser(
        "experiment",
        help="regenerate one paper artifact (resumable via --run-dir)",
    )
    experiment.add_argument(
        "name",
        help="registered experiment (see `python -m repro experiments`)",
    )
    experiment.add_argument(
        "--out",
        default=None,
        help="output directory for experiments that write files "
        "(fig6 CSVs; rejected elsewhere)",
    )
    experiment.add_argument(
        "--max-count-per-core",
        type=int,
        default=6,
        help="burst-length cap per core for the multicore experiments",
    )
    _add_search_arguments(experiment)

    search = sub.add_parser("search", help="schedule-space search")
    search.add_argument("--starts", nargs="*", help="e.g. --starts 4,2,2 1,2,1")
    _add_search_arguments(search)

    timeline = sub.add_parser("timeline", help="render a schedule timeline")
    timeline.add_argument("--schedule", required=True, help="e.g. 2,2,2")

    simulate = sub.add_parser(
        "simulate",
        help="simulate feedback scheduling under a load transient",
    )
    simulate.add_argument(
        "--horizon",
        type=float,
        default=1.0,
        help="simulated duration in seconds",
    )
    simulate.add_argument(
        "--stress",
        type=float,
        default=1.46,
        help="demand factor of the overload burst (1.0 = nominal; the "
        "default pushes the case study's static optimum past its "
        "scaled idle budget)",
    )
    simulate.add_argument(
        "--disturb-at",
        type=float,
        default=None,
        help="overload onset in seconds (default: 25%% of the horizon)",
    )
    simulate.add_argument(
        "--recover-at",
        type=float,
        default=None,
        help="recovery instant in seconds (default: 70%% of the horizon)",
    )
    simulate.add_argument(
        "--adapt-strategy",
        default=None,
        help="registered strategy the feedback loop re-invokes on load "
        "changes (default: online)",
    )
    simulate.add_argument(
        "--no-adapt",
        action="store_true",
        help="hold the static optimum for the whole horizon (the "
        "baseline the feedback experiment compares against)",
    )
    _add_search_arguments(simulate)

    batch = sub.add_parser(
        "batch", help="sweep a suite of synthesized scenarios"
    )
    batch.add_argument(
        "--suite-size", type=int, default=4, help="number of synthesized scenarios"
    )
    batch.add_argument("--seed", type=int, default=2018, help="synthesis seed")
    batch.add_argument(
        "--cores",
        type=int,
        default=1,
        help="co-design every scenario over this many cores (1 = single-core)",
    )
    batch.add_argument(
        "--jitter-platform",
        action="store_true",
        help="draw a fresh cache geometry and clock per scenario",
    )
    batch.add_argument(
        "--shared-cache",
        action="store_true",
        help="multicore scenarios way-partition one shared cache "
        "(needs --cores >= 2)",
    )
    batch.add_argument(
        "--dynamic",
        action="store_true",
        help="draw a load-transient profile per scenario and simulate "
        "the feedback loop after each search (single-core only)",
    )
    _add_allocator_argument(batch)
    _add_search_arguments(batch)

    multicore = sub.add_parser(
        "multicore",
        help="partition the case study across private-cache cores",
    )
    multicore.add_argument(
        "--cores", type=int, default=2, help="number of cores to partition onto"
    )
    multicore.add_argument(
        "--max-count-per-core",
        type=int,
        default=6,
        help="burst-length cap per core (bounds lone-app schedule spaces)",
    )
    multicore.add_argument(
        "--shared-cache",
        action="store_true",
        help="cores share one set-associative cache; the way allocation "
        "is co-optimized with the partition (default geometry: 32 sets "
        "x 4 ways, the paper capacity)",
    )
    multicore.add_argument(
        "--apps",
        type=int,
        default=None,
        help="replicate the case-study workload to this many applications "
        "(round-robin copies, re-normalized weights) so --cores can "
        "exceed the three paper applications",
    )
    _add_allocator_argument(multicore)
    _add_search_arguments(multicore)

    serve = sub.add_parser(
        "serve",
        help="run the search service (HTTP job queue, shared warm cache)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8765, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="jobs executing concurrently (executor threads)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="evaluation worker processes per job (0/1 = serial)",
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=64,
        help="max queued jobs before submissions are rejected (HTTP 429)",
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="per-job wall-clock budget in seconds (default: unlimited)",
    )
    serve.add_argument(
        "--run-dir",
        default=".repro-serve",
        help="service state root: job ledger, shared report run dir "
        "and (unless --cache-dir) the shared evaluation cache",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="shared persistent evaluation cache (default: RUN_DIR/cache)",
    )

    submit = sub.add_parser(
        "submit", help="submit a search job to a running server"
    )
    _add_server_argument(submit)
    submit.add_argument(
        "--starts", nargs="*", help="e.g. --starts 4,2,2 1,2,1"
    )
    submit.add_argument(
        "--n-starts",
        type=int,
        default=2,
        help="deterministic start schedules when --starts is omitted",
    )
    submit.add_argument("--seed", type=int, default=2018, help="search seed")
    submit.add_argument(
        "--cores",
        type=int,
        default=1,
        help="co-design over this many cores (1 = single-core search)",
    )
    submit.add_argument(
        "--max-count-per-core",
        type=int,
        default=6,
        help="burst-length cap per core for multicore jobs",
    )
    submit.add_argument(
        "--shared-cache",
        action="store_true",
        help="way-partition one shared cache (needs --cores >= 2)",
    )
    _add_allocator_argument(submit)
    submit.add_argument(
        "--suite-size",
        type=int,
        default=None,
        help="sweep a synthesized suite of this size instead of the "
        "case study",
    )
    submit.add_argument(
        "--no-resume",
        action="store_true",
        help="recompute even if the server holds a matching report",
    )
    submit.add_argument(
        "--strategy",
        default=None,
        help="registered search strategy (validated by the server)",
    )
    submit.add_argument(
        "--method", default=None, help=argparse.SUPPRESS
    )
    submit.add_argument(
        "--eval-backend",
        choices=("vectorized", "serial"),
        default="vectorized",
        help="candidate-batch evaluation backend on the server",
    )
    submit.add_argument(
        "--json",
        action="store_true",
        help="print the submitted job record JSON instead of a summary",
    )
    _add_platform_arguments(submit)

    status = sub.add_parser(
        "status", help="job status from a running server"
    )
    status.add_argument(
        "job", nargs="?", default=None, help="job id (omit to list all jobs)"
    )
    _add_server_argument(status)
    status.add_argument(
        "--json", action="store_true", help="print the record JSON"
    )

    watch = sub.add_parser(
        "watch", help="stream a job's progress events until it finishes"
    )
    watch.add_argument("job", help="job id (see `python -m repro status`)")
    _add_server_argument(watch)
    watch.add_argument(
        "--json",
        action="store_true",
        help="print the raw NDJSON wire messages instead of summaries",
    )

    args = parser.parse_args(argv)
    command = {
        "info": cmd_info,
        "evaluate": cmd_evaluate,
        "strategies": cmd_strategies,
        "allocators": cmd_allocators,
        "models": cmd_models,
        "experiments": cmd_experiments,
        "lint": cmd_lint,
        "experiment": cmd_experiment,
        "search": cmd_search,
        "timeline": cmd_timeline,
        "simulate": cmd_simulate,
        "batch": cmd_batch,
        "multicore": cmd_multicore,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "status": cmd_status,
        "watch": cmd_watch,
    }[args.command]
    try:
        command(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _add_search_arguments(parser: argparse.ArgumentParser) -> None:
    """The flag set shared by ``search``, ``batch`` and ``multicore``."""
    parser.add_argument(
        "--strategy",
        default=None,
        help="registered search strategy (see `python -m repro strategies`); "
        "default: hybrid (exhaustive per core for multicore)",
    )
    parser.add_argument(
        "--method",
        default=None,
        help=argparse.SUPPRESS,  # deprecated alias of --strategy
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the structured RunReport JSON to stdout instead of tables",
    )
    parser.add_argument(
        "--run-dir",
        default=None,
        help="persist per-scenario RunReport JSON artifacts here "
        "(matching reruns resume from disk)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="evaluation worker processes (0/1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent evaluation-cache directory (warm-starts reruns)",
    )
    parser.add_argument(
        "--eval-backend",
        choices=("vectorized", "serial"),
        default="vectorized",
        help="how candidate batches are evaluated: 'vectorized' stacks "
        "the controller designs of a batch into array operations, "
        "'serial' keeps the per-candidate oracle loop; both produce "
        "bit-identical results (default: vectorized)",
    )
    _add_platform_arguments(parser)
    parser.add_argument(
        "--progress",
        action="store_true",
        help="emit progress on stderr even when it is not a TTY "
        "(in-place line on a TTY — the automatic default there — "
        "one line per finished scenario / computed batch otherwise)",
    )


def _add_platform_arguments(parser: argparse.ArgumentParser) -> None:
    """The platform flag set (shared by the search commands and
    ``submit``, which ships them to the server as a fingerprint)."""
    parser.add_argument(
        "--wcet-model",
        default=None,
        help="registered WCET model to (re)analyze the programs with "
        "(see `python -m repro models`); default: static",
    )
    parser.add_argument(
        "--cache-sets",
        type=int,
        default=None,
        help="instruction-cache sets (default: 128; 32 with --shared-cache)",
    )
    parser.add_argument(
        "--cache-ways",
        type=int,
        default=None,
        help="instruction-cache ways (default: 1; 4 with --shared-cache)",
    )
    parser.add_argument(
        "--miss-cycles",
        type=int,
        default=None,
        help="cache-miss latency in cycles (default: 100)",
    )
    parser.add_argument(
        "--clock-mhz",
        type=float,
        default=None,
        help="processor clock in MHz (default: 20)",
    )


def _add_allocator_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--allocator",
        default=None,
        help="registered partition allocator for multicore co-designs "
        "(see `python -m repro allocators`); default: exhaustive",
    )


def _add_server_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--server",
        default="http://127.0.0.1:8765",
        help="base URL of the running `python -m repro serve`",
    )


if __name__ == "__main__":
    sys.exit(main())
