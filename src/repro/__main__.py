"""Top-level CLI: ``python -m repro <command>``.

Commands
--------
``info``
    Case-study summary: Table I WCETs, Table II parameters, space size.
``evaluate --schedule 3,2,3``
    Evaluate one periodic schedule (timing, per-app settling, P_all).
``search [--method hybrid|exhaustive|annealing] [--starts 4,2,2 1,2,1]``
    Run a schedule-space search and print the result.
``timeline --schedule 2,2,2``
    Render the schedule's timing diagram (paper Figs. 2/4).
``batch [--suite-size 4] [--method hybrid] [--cores K]``
    Sweep a suite of synthesized scenarios through the search engine
    (``--cores >= 2`` makes every scenario a multicore co-design).
``multicore [--cores 2]``
    Partition the case study across private-cache cores and jointly
    optimize the partition and the per-core schedules.

``search``, ``batch`` and ``multicore`` accept ``--workers N``
(evaluate candidate schedules on ``N`` worker processes) and
``--cache-dir DIR`` (persist every evaluation to a disk cache so reruns
warm-start).

The controller-design budget follows ``REPRO_PROFILE``.
"""

from __future__ import annotations

import argparse
import sys

from .apps import build_case_study
from .core.report import format_seconds_ms, render_table
from .experiments.profiles import current_profile, design_options_for_profile
from .sched import PeriodicSchedule, enumerate_idle_feasible
from .units import Clock
from .viz import render_schedule_timeline


def _parse_schedule(text: str) -> PeriodicSchedule:
    try:
        counts = tuple(int(part) for part in text.split(","))
        return PeriodicSchedule(counts)
    except Exception as exc:
        raise SystemExit(f"invalid schedule {text!r}: {exc}") from exc


def cmd_info(_args: argparse.Namespace) -> None:
    case = build_case_study()
    clock = Clock(20e6)
    rows = []
    for app in case.apps:
        rows.append(
            [
                app.name,
                f"{clock.cycles_to_us(app.wcets.cold_cycles):.2f} us",
                f"{clock.cycles_to_us(app.wcets.warm_cycles):.2f} us",
                f"{app.weight:.1f}",
                f"{app.spec.deadline * 1e3:.1f} ms",
                f"{app.max_idle * 1e3:.1f} ms",
            ]
        )
    print(
        render_table(
            ["App", "cold WCET", "warm WCET", "weight", "deadline", "max idle"],
            rows,
            title="DATE'18 case study",
        )
    )
    space = enumerate_idle_feasible(case.apps, case.clock)
    print(f"\nidle-feasible periodic schedules: {len(space)}")
    print(f"design profile: {current_profile()}")


def cmd_evaluate(args: argparse.Namespace) -> None:
    schedule = _parse_schedule(args.schedule)
    case = build_case_study()
    evaluator = case.evaluator(design_options_for_profile())
    evaluation = evaluator.evaluate(schedule)
    rows = []
    for app_eval, app in zip(evaluation.apps, case.apps):
        periods = ", ".join(f"{h * 1e6:.2f}" for h in app_eval.timing.periods)
        rows.append(
            [
                app_eval.app_name,
                f"[{periods}] us",
                format_seconds_ms(app_eval.settling, 2),
                f"{app_eval.performance:.3f}",
                "yes" if app_eval.settling <= app.spec.deadline else "NO",
            ]
        )
    print(
        render_table(
            ["App", "sampling periods", "settling", "P_i", "deadline met"],
            rows,
            title=f"schedule {schedule}",
        )
    )
    print(f"\nP_all = {evaluation.overall:.4f}  feasible: {evaluation.feasible}")


def cmd_search(args: argparse.Namespace) -> None:
    case = build_case_study()
    from .core.codesign import CodesignProblem

    with CodesignProblem(
        case.apps,
        case.clock,
        design_options_for_profile(),
        workers=args.workers,
        cache_dir=args.cache_dir,
    ) as problem:
        starts = [_parse_schedule(s) for s in args.starts] if args.starts else None
        result = problem.optimize(method=args.method, starts=starts)
        print(f"method: {result.method}  backend: {problem.engine.backend_name}")
        for trace in result.search.traces:
            path = " -> ".join(str(s) for s, _v in trace.path)
            print(f"  from {trace.start}: {trace.n_evaluations} evaluations; {path}")
        print(f"best: {result.best_schedule}  P_all = {result.best_overall:.4f}")
        stats = problem.engine.stats.as_dict()
        print(
            f"engine: {stats['n_computed']} computed, "
            f"{stats['n_memo_hits']} memo hits, {stats['n_disk_hits']} disk hits"
        )


def _format_best_schedule(outcome) -> str:
    """One cell for the best schedule — per-core list for multicore."""
    if outcome.multicore is not None:
        return " + ".join(str(core.schedule) for core in outcome.multicore.cores)
    return str(outcome.best_schedule)


def cmd_batch(args: argparse.Namespace) -> None:
    from .sched.engine import EngineOptions
    from .sched.engine.batch import run_batch, synthesize_scenarios

    scenarios = synthesize_scenarios(
        args.suite_size,
        seed=args.seed,
        method=args.method,
        design_options=design_options_for_profile(),
        n_cores=args.cores,
    )
    outcomes = run_batch(
        scenarios, EngineOptions(workers=args.workers, cache_dir=args.cache_dir)
    )
    rows = []
    for outcome in outcomes:
        stats = outcome.engine_stats
        rows.append(
            [
                outcome.name,
                str(outcome.n_apps),
                str(outcome.n_space),
                _format_best_schedule(outcome),
                f"{outcome.best_overall:.4f}",
                str(stats["n_computed"]),
                str(stats["n_disk_hits"]),
                f"{outcome.wall_time:.2f} s",
            ]
        )
    print(
        render_table(
            ["scenario", "apps", "space", "best schedule", "P_all",
             "computed", "disk hits", "wall time"],
            rows,
            title=f"batch {outcomes[0].method} search "
                  f"({outcomes[0].backend} backend, {args.workers} workers)",
        )
    )
    total_wall = sum(o.wall_time for o in outcomes)
    print(f"\ntotal search time: {total_wall:.2f} s over {len(outcomes)} scenarios")


def cmd_multicore(args: argparse.Namespace) -> None:
    from .multicore import MulticoreProblem

    case = build_case_study()
    with MulticoreProblem(
        case.apps,
        case.clock,
        n_cores=args.cores,
        design_options=design_options_for_profile(),
        max_count_per_core=args.max_count_per_core,
        workers=args.workers,
        cache_dir=args.cache_dir,
    ) as problem:
        result = problem.optimize()
        rows = []
        for core_index, core in enumerate(result.cores):
            names = ", ".join(case.apps[i].name for i in core.app_indices)
            rows.append(
                [
                    str(core_index),
                    names,
                    str(core.schedule),
                    ", ".join(
                        f"{result.settling[i] * 1e3:.2f} ms"
                        for i in core.app_indices
                    ),
                ]
            )
        print(
            render_table(
                ["core", "apps", "schedule", "settling"],
                rows,
                title=f"multicore co-design ({args.cores} cores, "
                      f"{problem.engine.backend_name} backend)",
            )
        )
        print(f"\nP_all = {result.overall:.4f}  cores used: {result.n_cores_used}")
        print(f"engine: {problem.engine.stats.summary()}")


def cmd_timeline(args: argparse.Namespace) -> None:
    schedule = _parse_schedule(args.schedule)
    case = build_case_study()
    print(
        render_schedule_timeline(
            schedule, [app.wcets for app in case.apps], case.clock
        )
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Cache-aware task scheduling for maximizing control performance.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="case-study summary")

    evaluate = sub.add_parser("evaluate", help="evaluate one schedule")
    evaluate.add_argument("--schedule", required=True, help="e.g. 3,2,3")

    search = sub.add_parser("search", help="schedule-space search")
    search.add_argument(
        "--method", default="hybrid", choices=["hybrid", "exhaustive", "annealing"]
    )
    search.add_argument("--starts", nargs="*", help="e.g. --starts 4,2,2 1,2,1")
    _add_engine_arguments(search)

    timeline = sub.add_parser("timeline", help="render a schedule timeline")
    timeline.add_argument("--schedule", required=True, help="e.g. 2,2,2")

    batch = sub.add_parser(
        "batch", help="sweep a suite of synthesized scenarios"
    )
    batch.add_argument(
        "--suite-size", type=int, default=4, help="number of synthesized scenarios"
    )
    batch.add_argument("--seed", type=int, default=2018, help="synthesis seed")
    batch.add_argument(
        "--method", default="hybrid", choices=["hybrid", "exhaustive", "annealing"]
    )
    batch.add_argument(
        "--cores",
        type=int,
        default=1,
        help="co-design every scenario over this many cores (1 = single-core)",
    )
    _add_engine_arguments(batch)

    multicore = sub.add_parser(
        "multicore",
        help="partition the case study across private-cache cores",
    )
    multicore.add_argument(
        "--cores", type=int, default=2, help="number of cores to partition onto"
    )
    multicore.add_argument(
        "--max-count-per-core",
        type=int,
        default=6,
        help="burst-length cap per core (bounds lone-app schedule spaces)",
    )
    _add_engine_arguments(multicore)

    args = parser.parse_args(argv)
    {
        "info": cmd_info,
        "evaluate": cmd_evaluate,
        "search": cmd_search,
        "timeline": cmd_timeline,
        "batch": cmd_batch,
        "multicore": cmd_multicore,
    }[args.command](args)
    return 0


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """``--workers`` / ``--cache-dir`` shared by search and batch."""
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="evaluation worker processes (0/1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent evaluation-cache directory (warm-starts reruns)",
    )


if __name__ == "__main__":
    sys.exit(main())
