"""Experiment E8 — feedback scheduling under a load transient.

The paper's co-design is a one-shot offline optimization for nominal
load.  This experiment asks what that choice costs once the load moves:
the case study runs through the discrete-event simulator
(:mod:`repro.sim`) under the canonical load transient — nominal demand,
an overload burst that pushes the static optimum past its scaled idle
budget, then recovery — twice:

* **static**: the offline optimum stays in place for the whole horizon
  (``adapt=False``), paying full cost wherever the overload makes it
  infeasible;
* **adaptive**: the feedback loop re-optimizes on every load change
  through the registered ``online`` strategy (warm engine, so each
  adaptation is cache hits, not fresh co-design) and switches schedules
  after the simulated adaptation latency.

The gap between the two time-averaged costs is what feedback
scheduling buys on this workload.  Both simulations are deterministic
and wall-clock-free, so reruns — and ``--run-dir`` resumes — are
byte-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from ..apps.casestudy import CaseStudy, build_case_study
from ..control.design import DesignOptions
from ..core.report import render_table
from ..errors import ConfigurationError
from ..platform import Platform
from ..sched.engine import EngineOptions
from ..sched.engine.batch import Scenario, run_scenario
from ..sim.profiles import load_transient
from ..sim.report import SimReport
from ..study.report import RunReport
from .profiles import design_options_for_profile
from .registry import ExperimentRequest, register_experiment
from .report import ExperimentReport, new_report


@dataclass
class FeedbackSummary:
    """Adaptive feedback scheduling next to the static baseline."""

    app_names: list[str]
    stress: float
    horizon: float
    strategy: str
    adapt_strategy: str
    static_schedule: list[int]
    static_overall: float
    static_sim: SimReport
    adaptive_sim: SimReport
    engine_summary: str = ""
    backend: str = "serial"
    static_wall: float = 0.0
    adaptive_wall: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def static_cost(self) -> float:
        """Time-averaged cost of holding the offline optimum."""
        return self.static_sim.mean_cost

    @property
    def adaptive_cost(self) -> float:
        """Time-averaged cost with the feedback loop adapting."""
        return self.adaptive_sim.mean_cost

    @property
    def improvement(self) -> float:
        """Cost the feedback loop saves (static minus adaptive)."""
        return self.static_cost - self.adaptive_cost

    def render(self) -> str:
        rows = []
        for record in self.adaptive_sim.adaptations:
            to = record.get("to")
            rows.append(
                [
                    f"{record['at']:.3f}",
                    "(" + ", ".join(f"{d:g}" for d in record["demands"]) + ")",
                    str(tuple(record["from"])),
                    str(tuple(to)) if to is not None else "failed",
                    "yes" if record.get("switched") else "no",
                    f"{record['latency'] * 1e3:.2f}",
                    str(record["engine"].get("n_requested", 0)),
                ]
            )
        adaptation_table = render_table(
            ["t (s)", "demands", "from", "to", "switched",
             "latency (ms)", "requested"],
            rows,
            title=(
                f"adaptations ({self.adapt_strategy} strategy, "
                f"stress x{self.stress:g})"
            ),
        )
        return (
            adaptation_table
            + f"\n\nstatic   optimum {tuple(self.static_schedule)}"
            f" (P_all = {self.static_overall:.4f})"
            + f"\nstatic   mean cost = {self.static_cost:.4f}"
            " (schedule held for the whole horizon)"
            + f"\nadaptive mean cost = {self.adaptive_cost:.4f}"
            f" ({self.adaptive_sim.n_adaptations} adaptations)"
            + f"\nfeedback-scheduling gain: {self.improvement:+.4f}"
            + (f"\nengine: {self.engine_summary}" if self.engine_summary else "")
        )


def run(
    case: CaseStudy | None = None,
    design_options: DesignOptions | None = None,
    platform: Platform | None = None,
    stress: float = 1.46,
    horizon: float = 1.0,
    strategy: str | None = None,
    adapt_strategy: str | None = None,
    workers: int = 0,
    cache_dir=None,
    on_event=None,
    on_sim_event=None,
) -> FeedbackSummary:
    """Run the static-vs-adaptive comparison on the case study.

    Both runs simulate the *same* load transient; only ``adapt``
    differs.  ``strategy`` picks the offline search (default
    ``hybrid``), ``adapt_strategy`` the re-optimization the feedback
    loop invokes (default ``online``).  With a ``cache_dir`` the two
    runs share persistent evaluations, and the adaptive run's
    re-optimizations hit the warm engine either way.
    """
    case = case or build_case_study(platform=platform)
    options = design_options or design_options_for_profile()
    profile = load_transient(
        len(case.apps),
        horizon=horizon,
        stress=stress,
        adapt_strategy=adapt_strategy,
    )
    engine_options = EngineOptions(workers=workers, cache_dir=cache_dir)

    def scenario(name: str, adapt: bool) -> Scenario:
        return Scenario(
            name=name,
            apps=case.apps,
            clock=case.clock,
            design_options=options,
            strategy=strategy,
            platform=platform,
            dynamic=replace(profile, adapt=adapt),
        )

    static_scenario = scenario("casestudy-static", adapt=False)
    adaptive_scenario = scenario("casestudy-adaptive", adapt=True)
    started = time.perf_counter()
    static_outcome = run_scenario(
        static_scenario, engine_options, on_event=on_event,
        on_sim_event=on_sim_event,
    )
    static_wall = time.perf_counter() - started
    started = time.perf_counter()
    adaptive_outcome = run_scenario(
        adaptive_scenario, engine_options, on_event=on_event,
        on_sim_event=on_sim_event,
    )
    adaptive_wall = time.perf_counter() - started
    best = adaptive_outcome.result.best
    summary = FeedbackSummary(
        app_names=[app.name for app in case.apps],
        stress=stress,
        horizon=horizon,
        strategy=adaptive_outcome.strategy,
        adapt_strategy=adaptive_outcome.sim.adapt_strategy,
        static_schedule=list(best.schedule.counts),
        static_overall=float(best.overall),
        static_sim=static_outcome.sim,
        adaptive_sim=adaptive_outcome.sim,
        engine_summary=(
            f"static: {static_outcome.engine_stats.get('n_requested', 0)} "
            f"requested / {static_outcome.engine_stats.get('n_computed', 0)} "
            f"computed; adaptive: "
            f"{adaptive_outcome.engine_stats.get('n_requested', 0)} requested "
            f"/ {adaptive_outcome.engine_stats.get('n_computed', 0)} computed"
        ),
        backend=adaptive_outcome.backend,
        static_wall=static_wall,
        adaptive_wall=adaptive_wall,
    )
    summary.extra["scenarios"] = (static_scenario, static_outcome,
                                  adaptive_scenario, adaptive_outcome)
    return summary


@register_experiment
class FeedbackExperiment:
    """Feedback scheduling vs the static optimum under a load transient."""

    name = "feedback"
    supports_out = False
    supports_strategy = True  # offline search the simulation starts from

    def build(self, request: ExperimentRequest) -> ExperimentReport:
        summary = run(
            design_options=request.design_options,
            platform=request.platform,
            strategy=request.strategy,
            workers=request.workers,
            cache_dir=request.cache_dir,
            on_event=request.on_event,
        )
        static_scenario, static_outcome, adaptive_scenario, adaptive_outcome = (
            summary.extra.pop("scenarios")
        )
        data = {
            "app_names": list(summary.app_names),
            "stress": float(summary.stress),
            "horizon": float(summary.horizon),
            "strategy": summary.strategy,
            "adapt_strategy": summary.adapt_strategy,
            "static_schedule": list(summary.static_schedule),
            "static_overall": float(summary.static_overall),
            "static_cost": float(summary.static_cost),
            "adaptive_cost": float(summary.adaptive_cost),
            "improvement": float(summary.improvement),
            "n_adaptations": int(summary.adaptive_sim.n_adaptations),
            "static_sim": summary.static_sim.to_dict(),
            "adaptive_sim": summary.adaptive_sim.to_dict(),
            "engine_summary": summary.engine_summary,
            "backend": summary.backend,
            "static_wall": float(summary.static_wall),
            "adaptive_wall": float(summary.adaptive_wall),
        }
        run_reports = [
            RunReport.from_outcome(static_scenario, static_outcome),
            RunReport.from_outcome(adaptive_scenario, adaptive_outcome),
        ]
        return new_report(
            self.name,
            data=data,
            run_reports=run_reports,
            platform=request.platform,
        )

    def render(self, report: ExperimentReport) -> str:
        return self.result_from(report).render()

    @staticmethod
    def result_from(report: ExperimentReport) -> FeedbackSummary:
        """Rebuild the summary from a (possibly resumed) report."""
        data = report.data
        try:
            return FeedbackSummary(
                app_names=list(data["app_names"]),
                stress=float(data["stress"]),
                horizon=float(data["horizon"]),
                strategy=str(data["strategy"]),
                adapt_strategy=str(data["adapt_strategy"]),
                static_schedule=[int(m) for m in data["static_schedule"]],
                static_overall=float(data["static_overall"]),
                static_sim=SimReport.from_dict(data["static_sim"]),
                adaptive_sim=SimReport.from_dict(data["adaptive_sim"]),
                engine_summary=str(data.get("engine_summary", "")),
                backend=str(data.get("backend", "serial")),
                static_wall=float(data.get("static_wall", 0.0)),
                adaptive_wall=float(data.get("adaptive_wall", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"invalid feedback experiment report: {exc}"
            ) from exc
