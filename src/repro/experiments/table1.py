"""Experiment E1 — paper Table I: WCETs with and without cache reuse.

Regenerates the three applications' cold WCET, guaranteed WCET reduction
and warm WCET from the instruction programs through both the static
(must/may) analysis and the concrete trace simulation, and compares with
the paper's microsecond values.  The calibrated programs reproduce the
table exactly (deviation 0.00 us).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..apps.casestudy import PAPER_TABLE1_US, build_case_study
from ..cache.config import CacheConfig
from ..core.report import render_table
from ..units import Clock
from ..wcet.reuse import analyze_task_wcets
from .registry import ExperimentRequest, register_experiment
from .report import ExperimentReport, new_report


@dataclass
class Table1Row:
    """One application's WCET triple, ours vs the paper's."""

    app_name: str
    cold_us: float
    reduction_us: float
    warm_us: float
    paper_cold_us: float
    paper_reduction_us: float
    paper_warm_us: float

    @property
    def max_deviation_us(self) -> float:
        """Largest absolute difference to the paper, in microseconds."""
        return max(
            abs(self.cold_us - self.paper_cold_us),
            abs(self.reduction_us - self.paper_reduction_us),
            abs(self.warm_us - self.paper_warm_us),
        )


@dataclass
class Table1Result:
    """All rows plus the analysis method agreement flag."""

    rows: list[Table1Row]
    methods_agree: bool

    @property
    def max_deviation_us(self) -> float:
        """Largest deviation across the whole table."""
        return max(row.max_deviation_us for row in self.rows)

    def render(self) -> str:
        table = render_table(
            ["Application", "WCET w/o reuse", "Guaranteed reduction", "WCET w/ reuse",
             "paper w/o", "paper red.", "paper w/"],
            [
                [
                    row.app_name,
                    f"{row.cold_us:.2f} us",
                    f"{row.reduction_us:.2f} us",
                    f"{row.warm_us:.2f} us",
                    f"{row.paper_cold_us:.2f}",
                    f"{row.paper_reduction_us:.2f}",
                    f"{row.paper_warm_us:.2f}",
                ]
                for row in self.rows
            ],
            title="Table I: WCET results with and without cache reuse",
        )
        return (
            table
            + f"\nmax deviation from paper: {self.max_deviation_us:.2f} us"
            + f"\nstatic and concrete analyses agree: {self.methods_agree}"
        )


def run(cache_config: CacheConfig | None = None) -> Table1Result:
    """Regenerate Table I."""
    case = build_case_study(cache_config)
    clock = Clock(20e6)
    rows = []
    agree = True
    for program in case.programs:
        static = analyze_task_wcets(program, case.cache_config, "static")
        concrete = analyze_task_wcets(program, case.cache_config, "concrete")
        agree = agree and (
            static.cold_cycles == concrete.cold_cycles
            and static.warm_cycles == concrete.warm_cycles
        )
        paper = PAPER_TABLE1_US[program.name]
        rows.append(
            Table1Row(
                app_name=program.name,
                cold_us=clock.cycles_to_us(static.cold_cycles),
                reduction_us=clock.cycles_to_us(static.reduction_cycles),
                warm_us=clock.cycles_to_us(static.warm_cycles),
                paper_cold_us=paper[0],
                paper_reduction_us=paper[1],
                paper_warm_us=paper[2],
            )
        )
    return Table1Result(rows=rows, methods_agree=agree)


@register_experiment
class Table1Experiment:
    """Table I — WCETs with and without cache reuse."""

    name = "table1"
    supports_out = False

    def build(self, request: ExperimentRequest) -> ExperimentReport:
        result = run(request.platform.cache if request.platform else None)
        return new_report(
            self.name,
            data={
                "rows": [asdict(row) for row in result.rows],
                "methods_agree": bool(result.methods_agree),
            },
            platform=request.platform,
        )

    def render(self, report: ExperimentReport) -> str:
        return self.result_from(report).render()

    @staticmethod
    def result_from(report: ExperimentReport) -> Table1Result:
        """Rebuild the result object from a (possibly resumed) report."""
        return Table1Result(
            rows=[Table1Row(**row) for row in report.data["rows"]],
            methods_agree=bool(report.data["methods_agree"]),
        )
