"""Paper-artifact regeneration (one module per table/figure).

Every experiment module exposes ``run(...)`` returning a result object
with a ``render()`` method; ``python -m repro.experiments <name>`` runs
one from the command line.  The mapping to the paper:

========  ============================================================
``table1``  Table I — WCETs with and without cache reuse
``table2``  Table II — application parameters
``table3``  Table III — settling-time comparison (1,1,1) vs (3,2,3)
``fig6``    Figure 6 — system-output responses under both schedules
``search``  Section V search statistics — exhaustive vs hybrid
========  ============================================================
"""

from .profiles import design_options_for_profile, current_profile

__all__ = ["current_profile", "design_options_for_profile"]
