"""Paper-artifact regeneration (one module per table/figure).

Every experiment registers itself with the **experiment registry**
(:mod:`repro.experiments.registry` — the same pluggable contract as the
search-strategy and WCET-model registries): resolve one with
:func:`get_experiment`, list them with :func:`available_experiments`,
run one with :func:`run_experiment`, which returns a structured,
JSON-round-tripping :class:`ExperimentReport` and persists/resumes it
under a run directory.  ``python -m repro experiments`` lists them from
the command line and ``python -m repro experiment <name>`` runs one
(``python -m repro.experiments`` remains as a deprecated shim).

The mapping to the paper:

==============  ======================================================
``table1``      Table I — WCETs with and without cache reuse
``table2``      Table II — application parameters
``table3``      Table III — settling-time comparison (1,1,1) vs (3,2,3)
``fig6``        Figure 6 — system-output responses under both schedules
``search``      Section V search statistics — exhaustive vs hybrid
``multicore``   Section VI multicore extension — partitioning gain
``shared_cache``  private caches vs one way-partitioned shared cache
==============  ======================================================

Each module also keeps its historical ``run(...)`` function returning a
result object with a ``render()`` method, for direct library use.
"""

from .profiles import design_options_for_profile, current_profile
from .registry import (
    ExperimentRequest,
    ExperimentSpec,
    available_experiments,
    experiment_description,
    get_experiment,
    register_experiment,
    run_experiment,
    unregister_experiment,
)
from .report import ExperimentReport

__all__ = [
    "ExperimentReport",
    "ExperimentRequest",
    "ExperimentSpec",
    "available_experiments",
    "current_profile",
    "design_options_for_profile",
    "experiment_description",
    "get_experiment",
    "register_experiment",
    "run_experiment",
    "unregister_experiment",
]
