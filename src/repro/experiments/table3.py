"""Experiment E3 — paper Table III: control performance comparison.

Evaluates the cache-oblivious round-robin schedule (1,1,1) and the
paper's optimal cache-aware schedule (3,2,3) with the holistic
controller design, and reports per-application settling times and the
relative improvement (the paper's "control performance improvement").
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..apps.casestudy import PAPER_TABLE3, CaseStudy, build_case_study
from ..control.design import DesignOptions
from ..core.report import format_percent, format_seconds_ms, render_table
from ..sched.schedule import PeriodicSchedule
from .profiles import design_options_for_profile
from .registry import ExperimentRequest, register_experiment
from .report import ExperimentReport, new_report


@dataclass
class Table3Row:
    """One application's settling comparison."""

    app_name: str
    settling_rr: float
    settling_ca: float
    paper_rr: float
    paper_ca: float
    paper_improvement: float

    @property
    def improvement(self) -> float:
        """Relative settling reduction of the cache-aware schedule."""
        return 1.0 - self.settling_ca / self.settling_rr


@dataclass
class Table3Result:
    """All rows plus the overall performances."""

    rows: list[Table3Row]
    overall_rr: float
    overall_ca: float
    rr_feasible: bool
    ca_feasible: bool

    @property
    def all_improved(self) -> bool:
        """Whether the cache-aware schedule improved every application."""
        return all(row.improvement > 0 for row in self.rows)

    def render(self) -> str:
        table = render_table(
            ["Application", "Settling (1,1,1)", "Settling (3,2,3)", "Improvement",
             "paper (1,1,1)", "paper (3,2,3)", "paper impr."],
            [
                [
                    row.app_name,
                    format_seconds_ms(row.settling_rr),
                    format_seconds_ms(row.settling_ca),
                    format_percent(row.improvement),
                    format_seconds_ms(row.paper_rr),
                    format_seconds_ms(row.paper_ca),
                    format_percent(row.paper_improvement),
                ]
                for row in self.rows
            ],
            title="Table III: control performance comparison",
        )
        return (
            table
            + f"\noverall performance: (1,1,1) {self.overall_rr:.4f}"
            + f" -> (3,2,3) {self.overall_ca:.4f}"
            + f"\nboth schedules feasible: {self.rr_feasible and self.ca_feasible}"
        )


def run(
    case: CaseStudy | None = None,
    design_options: DesignOptions | None = None,
) -> Table3Result:
    """Regenerate Table III."""
    case = case or build_case_study()
    evaluator = case.evaluator(design_options or design_options_for_profile())
    rr_eval = evaluator.evaluate(PeriodicSchedule.round_robin(len(case.apps)))
    ca_eval = evaluator.evaluate(PeriodicSchedule.of(3, 2, 3))
    rows = []
    for rr_app, ca_app in zip(rr_eval.apps, ca_eval.apps):
        paper_rr, paper_ca, paper_impr = PAPER_TABLE3[rr_app.app_name]
        rows.append(
            Table3Row(
                app_name=rr_app.app_name,
                settling_rr=rr_app.settling,
                settling_ca=ca_app.settling,
                paper_rr=paper_rr,
                paper_ca=paper_ca,
                paper_improvement=paper_impr,
            )
        )
    return Table3Result(
        rows=rows,
        overall_rr=rr_eval.overall,
        overall_ca=ca_eval.overall,
        rr_feasible=rr_eval.feasible,
        ca_feasible=ca_eval.feasible,
    )


@register_experiment
class Table3Experiment:
    """Table III — settling-time comparison (1,1,1) vs (3,2,3)."""

    name = "table3"
    supports_out = False

    def build(self, request: ExperimentRequest) -> ExperimentReport:
        case = (
            build_case_study(platform=request.platform)
            if request.platform
            else None
        )
        result = run(case, request.design_options)
        return new_report(
            self.name,
            data={
                "rows": [asdict(row) for row in result.rows],
                "overall_rr": float(result.overall_rr),
                "overall_ca": float(result.overall_ca),
                "rr_feasible": bool(result.rr_feasible),
                "ca_feasible": bool(result.ca_feasible),
            },
            platform=request.platform,
        )

    def render(self, report: ExperimentReport) -> str:
        return self.result_from(report).render()

    @staticmethod
    def result_from(report: ExperimentReport) -> Table3Result:
        """Rebuild the result object from a (possibly resumed) report."""
        data = report.data
        return Table3Result(
            rows=[Table3Row(**row) for row in data["rows"]],
            overall_rr=float(data["overall_rr"]),
            overall_ca=float(data["overall_ca"]),
            rr_feasible=bool(data["rr_feasible"]),
            ca_feasible=bool(data["ca_feasible"]),
        )
