"""Experiment E6 — multicore extension (paper Section VI).

The paper notes the framework "can be naturally extended to a
multi-core architecture, where each core has its own cache".  This
experiment quantifies that extension on the case study: partition the
three applications onto ``n_cores`` private-cache cores (through the
partitioned search engine), and compare the best partition's overall
control performance against the best single-core schedule of the same
sweep — the single-core problem is just the one-block partition, so the
comparison comes from one engine run and one shared cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from ..apps.casestudy import CaseStudy, build_case_study
from ..control.design import DesignOptions
from ..core.report import render_table
from ..multicore.partition import (
    CoreAssignment,
    MulticoreEvaluation,
    MulticoreProblem,
)
from ..platform import Platform
from ..sched.engine.batch import Scenario, ScenarioOutcome
from ..sched.schedule import PeriodicSchedule
from ..study.report import RunReport
from .profiles import design_options_for_profile
from .registry import ExperimentRequest, register_experiment
from .report import ExperimentReport, new_report


@dataclass
class MulticoreSummary:
    """Multicore co-design next to the single-core baseline."""

    n_cores: int
    app_names: list[str]
    best: MulticoreEvaluation
    single_schedule: PeriodicSchedule | None
    single_overall: float | None
    engine_stats: dict
    engine_summary: str
    backend: str = "serial"
    wall_time: float = 0.0
    max_count_per_core: int = 6

    @property
    def improvement(self) -> float | None:
        """Absolute P_all gain of partitioning over one shared core."""
        if self.single_overall is None:
            return None
        return self.best.overall - self.single_overall

    def render(self) -> str:
        rows = []
        for core_index, core in enumerate(self.best.cores):
            names = ", ".join(self.app_names[i] for i in core.app_indices)
            rows.append(
                [
                    str(core_index),
                    names,
                    str(core.schedule),
                    ", ".join(
                        f"{self.best.settling[i] * 1e3:.2f}"
                        for i in core.app_indices
                    ),
                ]
            )
        table = render_table(
            ["core", "apps", "schedule", "settling (ms)"],
            rows,
            title=f"Section VI: {self.n_cores}-core co-design",
        )
        if self.single_overall is None:
            single = "single core: no feasible schedule under the burst cap"
        else:
            single = (
                f"single core best: {self.single_schedule} "
                f"P_all = {self.single_overall:.4f}"
            )
        return (
            table
            + f"\n\nmulticore P_all = {self.best.overall:.4f} "
            f"({self.best.n_cores_used} cores used)"
            + f"\n{single}"
            + (
                f"\npartitioning gain: {self.improvement:+.4f}"
                if self.improvement is not None
                else ""
            )
            + f"\nengine: {self.engine_summary}"
        )


def run(
    case: CaseStudy | None = None,
    design_options: DesignOptions | None = None,
    n_cores: int = 2,
    max_count_per_core: int = 6,
    workers: int = 0,
    cache_dir: str | Path | None = None,
    platform: Platform | None = None,
    strategy: str | None = None,
    on_event=None,
) -> MulticoreSummary:
    """Run the multicore partition sweep (and its single-core baseline).

    ``workers``/``cache_dir`` route the sweep through the partitioned
    engine's worker pool and persistent cache, exactly like the CLI's
    ``python -m repro multicore --workers N --cache-dir D``.
    ``strategy`` picks the per-core schedule search (default
    ``exhaustive``); ``platform`` rebuilds the case study on a
    different execution platform when no ``case`` is given;
    ``on_event`` receives the engine's typed progress events.
    """
    case = case or build_case_study(platform=platform)
    options = design_options or design_options_for_profile()
    started = time.perf_counter()
    with MulticoreProblem(
        case.apps,
        case.clock,
        n_cores=n_cores,
        design_options=options,
        max_count_per_core=max_count_per_core,
        workers=workers,
        cache_dir=cache_dir,
        platform=platform,
        on_event=on_event,
    ) as problem:
        best = problem.optimize(strategy=strategy or "exhaustive")
        # The one-block partition *is* the single-core problem; after
        # optimize() its evaluations are memoized, so this is free.
        single_block = tuple(range(len(case.apps)))
        single = problem.best_schedule_for_core(single_block)
        if single is None:
            single_schedule, single_overall = None, None
        else:
            single_schedule = single[0]
            single_overall = sum(
                case.apps[i].weight * performance
                for i, performance in single[2].items()
            )
        return MulticoreSummary(
            n_cores=n_cores,
            app_names=[app.name for app in case.apps],
            best=best,
            single_schedule=single_schedule,
            single_overall=single_overall,
            engine_stats=problem.engine.stats.as_dict(),
            engine_summary=problem.engine.stats.summary(),
            backend=problem.engine.backend_name,
            wall_time=time.perf_counter() - started,
            max_count_per_core=max_count_per_core,
        )


def evaluation_to_data(evaluation: MulticoreEvaluation) -> dict:
    """JSON-safe form of one :class:`MulticoreEvaluation`."""
    return {
        "cores": [
            {
                "app_indices": [int(i) for i in core.app_indices],
                "schedule": [int(m) for m in core.schedule.counts],
                "ways": core.ways,
            }
            for core in evaluation.cores
        ],
        "settling": {str(k): float(v) for k, v in evaluation.settling.items()},
        "performances": {
            str(k): float(v) for k, v in evaluation.performances.items()
        },
        "overall": float(evaluation.overall),
        "feasible": bool(evaluation.feasible),
    }


def evaluation_from_data(data: dict) -> MulticoreEvaluation:
    """Inverse of :func:`evaluation_to_data`."""
    return MulticoreEvaluation(
        cores=tuple(
            CoreAssignment(
                app_indices=tuple(int(i) for i in core["app_indices"]),
                schedule=PeriodicSchedule(tuple(int(m) for m in core["schedule"])),
                ways=core["ways"],
            )
            for core in data["cores"]
        ),
        settling={int(k): float(v) for k, v in data["settling"].items()},
        performances={
            int(k): float(v) for k, v in data["performances"].items()
        },
        overall=float(data["overall"]),
        feasible=bool(data["feasible"]),
    )


def summary_run_report(
    summary: MulticoreSummary,
    case: CaseStudy,
    options: DesignOptions,
    platform: Platform | None,
    strategy: str | None,
    shared_cache: bool = False,
    name: str = "casestudy-multicore",
) -> RunReport:
    """The partition sweep recorded as a structured run report.

    Rebuilds the :class:`~repro.sched.engine.batch.Scenario` /
    :class:`~repro.sched.engine.batch.ScenarioOutcome` pair the
    ``Study`` facade would have produced for the same co-design, so
    the experiment's embedded reports are directly comparable with
    ``python -m repro multicore`` artifacts.  (The shared-cache
    experiment records each of its two sweeps by passing a per-side
    proxy ``summary``.)
    """
    evaluation = summary.best
    stats = summary.engine_stats
    scenario = Scenario(
        name=name,
        apps=case.apps,
        clock=case.clock,
        design_options=options,
        strategy=strategy or "exhaustive",
        n_cores=summary.n_cores,
        max_count_per_core=summary.max_count_per_core,
        platform=platform,
        shared_cache=shared_cache,
    )
    outcome = ScenarioOutcome(
        name=name,
        strategy=scenario.strategy,
        result=None,
        wall_time=summary.wall_time,
        n_space=int(stats.get("n_requested", 0)),
        engine_stats=stats,
        backend=summary.backend,
        n_apps=len(case.apps),
        n_cores=summary.n_cores,
        multicore=evaluation,
    )
    return RunReport.from_outcome(scenario, outcome)


@register_experiment
class MulticoreExperiment:
    """Multicore extension — partitioning gain over one core."""

    name = "multicore"
    supports_out = False
    supports_strategy = True  # per-core schedule search
    supports_max_count = True  # per-core burst-length cap

    def build(self, request: ExperimentRequest) -> ExperimentReport:
        case = build_case_study(platform=request.platform)
        options = request.design_options or design_options_for_profile()
        summary = run(
            case=case,
            design_options=options,
            max_count_per_core=request.max_count_per_core,
            workers=request.workers,
            cache_dir=request.cache_dir,
            platform=request.platform,
            strategy=request.strategy,
            on_event=request.on_event,
        )
        data = {
            "n_cores": int(summary.n_cores),
            "app_names": list(summary.app_names),
            "best": evaluation_to_data(summary.best),
            "single_schedule": (
                [int(m) for m in summary.single_schedule.counts]
                if summary.single_schedule is not None
                else None
            ),
            "single_overall": (
                float(summary.single_overall)
                if summary.single_overall is not None
                else None
            ),
            "engine_stats": summary.engine_stats,
            "engine_summary": summary.engine_summary,
            "backend": summary.backend,
            "wall_time": float(summary.wall_time),
            "max_count_per_core": int(summary.max_count_per_core),
        }
        report = summary_run_report(
            summary, case, options, request.platform, request.strategy
        )
        return new_report(
            self.name,
            data=data,
            run_reports=[report],
            platform=request.platform,
        )

    def render(self, report: ExperimentReport) -> str:
        return self.result_from(report).render()

    @staticmethod
    def result_from(report: ExperimentReport) -> MulticoreSummary:
        """Rebuild the summary from a (possibly resumed) report."""
        data = report.data
        return MulticoreSummary(
            n_cores=int(data["n_cores"]),
            app_names=list(data["app_names"]),
            best=evaluation_from_data(data["best"]),
            single_schedule=(
                PeriodicSchedule(tuple(data["single_schedule"]))
                if data["single_schedule"] is not None
                else None
            ),
            single_overall=data["single_overall"],
            engine_stats=dict(data["engine_stats"]),
            engine_summary=str(data["engine_summary"]),
            backend=str(data["backend"]),
            wall_time=float(data["wall_time"]),
            max_count_per_core=int(data["max_count_per_core"]),
        )
