"""Experiment E6 — multicore extension (paper Section VI).

The paper notes the framework "can be naturally extended to a
multi-core architecture, where each core has its own cache".  This
experiment quantifies that extension on the case study: partition the
three applications onto ``n_cores`` private-cache cores (through the
partitioned search engine), and compare the best partition's overall
control performance against the best single-core schedule of the same
sweep — the single-core problem is just the one-block partition, so the
comparison comes from one engine run and one shared cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..apps.casestudy import CaseStudy, build_case_study
from ..control.design import DesignOptions
from ..core.report import render_table
from ..multicore.partition import MulticoreEvaluation, MulticoreProblem
from ..sched.schedule import PeriodicSchedule
from .profiles import design_options_for_profile


@dataclass
class MulticoreSummary:
    """Multicore co-design next to the single-core baseline."""

    n_cores: int
    app_names: list[str]
    best: MulticoreEvaluation
    single_schedule: PeriodicSchedule | None
    single_overall: float | None
    engine_stats: dict
    engine_summary: str

    @property
    def improvement(self) -> float | None:
        """Absolute P_all gain of partitioning over one shared core."""
        if self.single_overall is None:
            return None
        return self.best.overall - self.single_overall

    def render(self) -> str:
        rows = []
        for core_index, core in enumerate(self.best.cores):
            names = ", ".join(self.app_names[i] for i in core.app_indices)
            rows.append(
                [
                    str(core_index),
                    names,
                    str(core.schedule),
                    ", ".join(
                        f"{self.best.settling[i] * 1e3:.2f}"
                        for i in core.app_indices
                    ),
                ]
            )
        table = render_table(
            ["core", "apps", "schedule", "settling (ms)"],
            rows,
            title=f"Section VI: {self.n_cores}-core co-design",
        )
        if self.single_overall is None:
            single = "single core: no feasible schedule under the burst cap"
        else:
            single = (
                f"single core best: {self.single_schedule} "
                f"P_all = {self.single_overall:.4f}"
            )
        return (
            table
            + f"\n\nmulticore P_all = {self.best.overall:.4f} "
            f"({self.best.n_cores_used} cores used)"
            + f"\n{single}"
            + (
                f"\npartitioning gain: {self.improvement:+.4f}"
                if self.improvement is not None
                else ""
            )
            + f"\nengine: {self.engine_summary}"
        )


def run(
    case: CaseStudy | None = None,
    design_options: DesignOptions | None = None,
    n_cores: int = 2,
    max_count_per_core: int = 6,
    workers: int = 0,
    cache_dir: str | Path | None = None,
) -> MulticoreSummary:
    """Run the multicore partition sweep (and its single-core baseline).

    ``workers``/``cache_dir`` route the sweep through the partitioned
    engine's worker pool and persistent cache, exactly like the CLI's
    ``python -m repro multicore --workers N --cache-dir D``.
    """
    case = case or build_case_study()
    options = design_options or design_options_for_profile()
    with MulticoreProblem(
        case.apps,
        case.clock,
        n_cores=n_cores,
        design_options=options,
        max_count_per_core=max_count_per_core,
        workers=workers,
        cache_dir=cache_dir,
    ) as problem:
        best = problem.optimize()
        # The one-block partition *is* the single-core problem; after
        # optimize() its evaluations are memoized, so this is free.
        single_block = tuple(range(len(case.apps)))
        single = problem.best_schedule_for_core(single_block)
        if single is None:
            single_schedule, single_overall = None, None
        else:
            single_schedule = single[0]
            single_overall = sum(
                case.apps[i].weight * performance
                for i, performance in single[2].items()
            )
        return MulticoreSummary(
            n_cores=n_cores,
            app_names=[app.name for app in case.apps],
            best=best,
            single_schedule=single_schedule,
            single_overall=single_overall,
            engine_stats=problem.engine.stats.as_dict(),
            engine_summary=problem.engine.stats.summary(),
        )
