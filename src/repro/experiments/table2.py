"""Experiment E2 — paper Table II: application parameters.

Table II is configuration, not measurement; this experiment verifies the
built case study carries exactly the paper's weights, settling deadlines
and maximum allowed idle times, and renders them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.casestudy import PAPER_TABLE2, build_case_study
from ..core.report import render_table
from .registry import ExperimentRequest, register_experiment
from .report import ExperimentReport, new_report


@dataclass
class Table2Result:
    """Rendered parameters plus the exact-match flag."""

    rows: list[list[str]]
    matches_paper: bool

    def render(self) -> str:
        table = render_table(
            ["Application", "Weight", "Settling deadline", "Max idle time"],
            self.rows,
            title="Table II: application parameters",
        )
        return table + f"\nmatches paper: {self.matches_paper}"


def run() -> Table2Result:
    """Regenerate Table II from the built case study."""
    case = build_case_study()
    rows = []
    matches = True
    for app in case.apps:
        paper_weight, paper_deadline, paper_idle = PAPER_TABLE2[app.name]
        matches = matches and (
            app.weight == paper_weight
            and app.spec.deadline == paper_deadline
            and app.max_idle == paper_idle
        )
        rows.append(
            [
                app.name,
                f"{app.weight:.1f}",
                f"{app.spec.deadline * 1e3:.1f} ms",
                f"{app.max_idle * 1e3:.1f} ms",
            ]
        )
    return Table2Result(rows=rows, matches_paper=matches)


@register_experiment
class Table2Experiment:
    """Table II — application parameters."""

    name = "table2"
    supports_out = False

    def build(self, request: ExperimentRequest) -> ExperimentReport:
        result = run()
        return new_report(
            self.name,
            data={
                "rows": [list(row) for row in result.rows],
                "matches_paper": bool(result.matches_paper),
            },
            platform=request.platform,
        )

    def render(self, report: ExperimentReport) -> str:
        return self.result_from(report).render()

    @staticmethod
    def result_from(report: ExperimentReport) -> Table2Result:
        """Rebuild the result object from a (possibly resumed) report."""
        return Table2Result(
            rows=[list(row) for row in report.data["rows"]],
            matches_paper=bool(report.data["matches_paper"]),
        )
