"""Structured, persisted experiment reports.

An :class:`ExperimentReport` is the JSON-serializable artifact of one
paper-artifact regeneration: which experiment ran, under which design
profile and platform, the structured per-row / per-series data the
rendered table or figure is built from, the embedded
:class:`~repro.study.RunReport`\\ s wherever a schedule search ran, and
the wall time.  Reports round-trip losslessly through
:meth:`ExperimentReport.to_json` / :meth:`ExperimentReport.from_json`,
so the paper's headline outputs persist under a run directory exactly
like search runs do — resumable, diffable, comparable across commits.

Rendering is a pure function of the report (each registered experiment
renders *from* its report's data, never from transient state), so a
report resumed from disk renders byte-identically to the run that
produced it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

from ..study.report import RunReport, _json_safe

#: Bump when the report layout changes incompatibly.
SCHEMA_VERSION = 1


@dataclass
class ExperimentReport:
    """Structured outcome of one experiment run (JSON round-trippable).

    ``data`` is the experiment-specific payload (table rows, figure
    series, search statistics) — JSON-safe by construction.
    ``run_reports`` embeds one :class:`~repro.study.RunReport` per
    schedule search the experiment executed (empty for pure
    table/figure regenerations).  ``request`` records the
    result-affecting request fields (strategy, design options) the
    resume logic compares.
    """

    experiment: str
    profile: str
    platform: dict
    request: dict
    data: dict
    run_reports: list[RunReport]
    wall_time: float
    created_at: float
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    # Round-tripping
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        # Field-by-field (not asdict): the data payload can be large
        # (fig6 series) and needs no deep copy, and asdict would
        # convert the embedded RunReports a second time.
        return {
            "experiment": self.experiment,
            "profile": self.profile,
            "platform": self.platform,
            "request": self.request,
            "data": self.data,
            "run_reports": [report.to_dict() for report in self.run_reports],
            "wall_time": self.wall_time,
            "created_at": self.created_at,
            "schema_version": self.schema_version,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentReport":
        return cls(
            experiment=str(data["experiment"]),
            profile=str(data["profile"]),
            platform=dict(data["platform"]),
            request=dict(data["request"]),
            data=dict(data["data"]),
            run_reports=[
                RunReport.from_dict(entry) for entry in data["run_reports"]
            ],
            wall_time=float(data["wall_time"]),
            created_at=float(data["created_at"]),
            schema_version=int(data.get("schema_version", SCHEMA_VERSION)),
        )

    def to_json(self, indent: int | None = 2) -> str:
        """Stable JSON form (sorted keys; ``Infinity`` allowed for the
        non-finite settling of infeasible designs)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentReport":
        """Inverse of :meth:`to_json` (identity round-trip)."""
        return cls.from_dict(json.loads(text))


def new_report(
    experiment: str,
    data: dict,
    run_reports: list[RunReport] | None = None,
    platform=None,
) -> ExperimentReport:
    """Fresh report skeleton for one experiment run.

    The registry runner stamps ``profile``/``request``/``wall_time``
    after the build, so experiments only fill in what they measured:
    the data payload, the embedded run reports and the platform the
    run was built on (``None`` = the paper platform).
    """
    # Imported lazily: repro.platform pulls the wcet registry.
    from ..platform import Platform

    return ExperimentReport(
        experiment=experiment,
        profile="",
        platform=(platform or Platform()).fingerprint(),
        request={},
        data=_json_safe(data),
        run_reports=list(run_reports or []),
        wall_time=0.0,
        created_at=time.time(),
    )
