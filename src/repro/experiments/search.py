"""Experiment E5 — Section V search statistics.

Reruns the paper's schedule-space experiment:

* enumerate the idle-feasible space (paper: 76 schedules) and evaluate
  all of them exhaustively (paper: 74 turn out feasible);
* run the hybrid search from the paper's two start schedules (4,2,2)
  and (1,2,1) (paper: 9 and 18 evaluations, both reaching the optimum
  (3,2,3) with overall performance 0.195).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..apps.casestudy import CaseStudy, PAPER_BEST_OVERALL, build_case_study
from ..control.design import DesignOptions
from ..core.report import render_table
from ..sched.engine import SearchEngine
from ..sched.feasibility import enumerate_idle_feasible
from ..sched.schedule import PeriodicSchedule
from ..sched.strategies import StrategySpec, get_strategy
from .profiles import design_options_for_profile

#: The paper's two random hybrid-search starts.
PAPER_STARTS = (PeriodicSchedule.of(4, 2, 2), PeriodicSchedule.of(1, 2, 1))

#: Paper Section V statistics for comparison.
PAPER_STATS = {
    "n_enumerated": 76,
    "n_feasible": 74,
    "optimum": PeriodicSchedule.of(3, 2, 3),
    "best_overall": PAPER_BEST_OVERALL,
    "hybrid_evaluations": {PAPER_STARTS[0].counts: 9, PAPER_STARTS[1].counts: 18},
}


@dataclass
class SearchResultSummary:
    """Our statistics next to the paper's."""

    n_enumerated: int
    n_feasible: int
    optimum: PeriodicSchedule
    best_overall: float
    round_robin_overall: float
    hybrid_evaluations: dict[tuple[int, ...], int]
    hybrid_optima: dict[tuple[int, ...], PeriodicSchedule]
    infeasible_schedules: list[PeriodicSchedule]

    @property
    def hybrid_found_optimum(self) -> bool:
        """Whether every hybrid start reached the exhaustive optimum."""
        return all(s == self.optimum for s in self.hybrid_optima.values())

    @property
    def hybrid_cheaper_than_exhaustive(self) -> bool:
        """The paper's efficiency claim."""
        return all(
            count < self.n_enumerated
            for count in self.hybrid_evaluations.values()
        )

    def render(self) -> str:
        rows = [
            ["idle-feasible schedules enumerated", str(self.n_enumerated),
             str(PAPER_STATS["n_enumerated"])],
            ["feasible after evaluation", str(self.n_feasible),
             str(PAPER_STATS["n_feasible"])],
            ["optimal schedule", str(self.optimum), str(PAPER_STATS["optimum"])],
            ["best overall performance", f"{self.best_overall:.4f}",
             f"{PAPER_STATS['best_overall']:.3f}"],
            ["round-robin overall performance", f"{self.round_robin_overall:.4f}", "-"],
        ]
        for start, count in self.hybrid_evaluations.items():
            paper_count = PAPER_STATS["hybrid_evaluations"].get(start, "-")
            rows.append(
                [
                    f"hybrid evaluations from {PeriodicSchedule(start)}",
                    f"{count} -> {self.hybrid_optima[start]}",
                    str(paper_count),
                ]
            )
        table = render_table(
            ["statistic", "this reproduction", "paper"],
            rows,
            title="Section V: schedule-space search",
        )
        extras = (
            f"\nhybrid reached the global optimum from every start: "
            f"{self.hybrid_found_optimum}"
            f"\nsettling-infeasible schedules: "
            f"{[str(s) for s in self.infeasible_schedules]}"
        )
        return table + extras


def run(
    case: CaseStudy | None = None,
    design_options: DesignOptions | None = None,
    starts: tuple[PeriodicSchedule, ...] = PAPER_STARTS,
    workers: int = 0,
    cache_dir: str | Path | None = None,
) -> SearchResultSummary:
    """Rerun the schedule-space experiment.

    ``workers``/``cache_dir`` route every evaluation through the batch
    search engine (parallel workers, persistent cache); the default is
    the original serial in-memory path.  With a shared ``cache_dir`` the
    exhaustive sweep warms the per-start hybrid searches and any later
    rerun of the whole experiment.
    """
    case = case or build_case_study()

    def fresh_engine() -> SearchEngine:
        return SearchEngine(
            case.evaluator(design_options or design_options_for_profile()),
            workers=workers,
            cache_dir=cache_dir,
        )

    with fresh_engine() as evaluator:
        space = enumerate_idle_feasible(case.apps, case.clock)
        exhaustive = get_strategy("exhaustive").run(
            evaluator, space, StrategySpec()
        )

        hybrid = get_strategy("hybrid")
        hybrid_counts: dict[tuple[int, ...], int] = {}
        hybrid_optima: dict[tuple[int, ...], PeriodicSchedule] = {}
        for start in starts:
            # A fresh evaluator per start so the evaluation count reflects a
            # standalone search (the paper reports per-start counts); each
            # engine is closed as soon as its search ends so worker pools
            # don't pile up across starts.
            with fresh_engine() as fresh:
                result = hybrid.run(fresh, space, StrategySpec(starts=(start,)))
                hybrid_counts[start.counts] = result.traces[0].n_evaluations
                hybrid_optima[start.counts] = result.best_schedule

        infeasible = [
            schedule
            for schedule in space
            if not evaluator.evaluate(schedule).feasible
        ]
        round_robin = evaluator.evaluate(PeriodicSchedule.round_robin(len(case.apps)))
    return SearchResultSummary(
        n_enumerated=len(space),
        n_feasible=exhaustive.stats["n_feasible"],
        optimum=exhaustive.best_schedule,
        best_overall=exhaustive.best_value,
        round_robin_overall=round_robin.overall,
        hybrid_evaluations=hybrid_counts,
        hybrid_optima=hybrid_optima,
        infeasible_schedules=infeasible,
    )

