"""Experiment E5 — Section V search statistics.

Reruns the paper's schedule-space experiment:

* enumerate the idle-feasible space (paper: 76 schedules) and evaluate
  all of them exhaustively (paper: 74 turn out feasible);
* run the hybrid search from the paper's two start schedules (4,2,2)
  and (1,2,1) (paper: 9 and 18 evaluations, both reaching the optimum
  (3,2,3) with overall performance 0.195).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from ..apps.casestudy import CaseStudy, PAPER_BEST_OVERALL, build_case_study
from ..control.design import DesignOptions
from ..core.report import render_table
from ..platform import Platform
from ..sched.engine import EngineOptions, SearchEngine
from ..sched.engine.batch import Scenario, ScenarioOutcome, run_scenario
from ..sched.feasibility import enumerate_idle_feasible
from ..sched.schedule import PeriodicSchedule
from ..sched.strategies import StrategySpec, get_strategy
from ..study.report import RunReport
from .profiles import design_options_for_profile
from .registry import ExperimentRequest, register_experiment
from .report import ExperimentReport, new_report

#: The paper's two random hybrid-search starts.
PAPER_STARTS = (PeriodicSchedule.of(4, 2, 2), PeriodicSchedule.of(1, 2, 1))

#: Paper Section V statistics for comparison.
PAPER_STATS = {
    "n_enumerated": 76,
    "n_feasible": 74,
    "optimum": PeriodicSchedule.of(3, 2, 3),
    "best_overall": PAPER_BEST_OVERALL,
    "hybrid_evaluations": {PAPER_STARTS[0].counts: 9, PAPER_STARTS[1].counts: 18},
}


@dataclass
class SearchResultSummary:
    """Our statistics next to the paper's."""

    n_enumerated: int
    n_feasible: int
    optimum: PeriodicSchedule
    best_overall: float
    round_robin_overall: float
    hybrid_evaluations: dict[tuple[int, ...], int]
    hybrid_optima: dict[tuple[int, ...], PeriodicSchedule]
    infeasible_schedules: list[PeriodicSchedule]
    #: One :class:`~repro.study.RunReport` per search that ran — the
    #: exhaustive sweep plus one hybrid search per start.
    run_reports: list[RunReport] = field(default_factory=list)

    @property
    def hybrid_found_optimum(self) -> bool:
        """Whether every hybrid start reached the exhaustive optimum."""
        return all(s == self.optimum for s in self.hybrid_optima.values())

    @property
    def hybrid_cheaper_than_exhaustive(self) -> bool:
        """The paper's efficiency claim."""
        return all(
            count < self.n_enumerated
            for count in self.hybrid_evaluations.values()
        )

    def render(self) -> str:
        rows = [
            ["idle-feasible schedules enumerated", str(self.n_enumerated),
             str(PAPER_STATS["n_enumerated"])],
            ["feasible after evaluation", str(self.n_feasible),
             str(PAPER_STATS["n_feasible"])],
            ["optimal schedule", str(self.optimum), str(PAPER_STATS["optimum"])],
            ["best overall performance", f"{self.best_overall:.4f}",
             f"{PAPER_STATS['best_overall']:.3f}"],
            ["round-robin overall performance", f"{self.round_robin_overall:.4f}", "-"],
        ]
        for start, count in self.hybrid_evaluations.items():
            paper_count = PAPER_STATS["hybrid_evaluations"].get(start, "-")
            rows.append(
                [
                    f"hybrid evaluations from {PeriodicSchedule(start)}",
                    f"{count} -> {self.hybrid_optima[start]}",
                    str(paper_count),
                ]
            )
        table = render_table(
            ["statistic", "this reproduction", "paper"],
            rows,
            title="Section V: schedule-space search",
        )
        extras = (
            "\nhybrid reached the global optimum from every start: "
            f"{self.hybrid_found_optimum}"
            "\nsettling-infeasible schedules: "
            f"{[str(s) for s in self.infeasible_schedules]}"
        )
        return table + extras


def _start_label(start: PeriodicSchedule) -> str:
    return "x".join(str(count) for count in start.counts)


def run(
    case: CaseStudy | None = None,
    design_options: DesignOptions | None = None,
    starts: tuple[PeriodicSchedule, ...] = PAPER_STARTS,
    workers: int = 0,
    cache_dir: str | Path | None = None,
    platform: Platform | None = None,
    on_event=None,
) -> SearchResultSummary:
    """Rerun the schedule-space experiment.

    ``workers``/``cache_dir`` route every evaluation through the batch
    search engine (parallel workers, persistent cache); the default is
    the original serial in-memory path.  With a shared ``cache_dir`` the
    exhaustive sweep warms the per-start hybrid searches and any later
    rerun of the whole experiment.  ``platform`` rebuilds the case
    study on a different execution platform when no ``case`` is given;
    ``on_event`` receives the engines' typed progress events.

    Besides the summary statistics, every search that ran — the
    exhaustive sweep and each per-start hybrid — is recorded as a
    structured :class:`~repro.study.RunReport` in
    :attr:`SearchResultSummary.run_reports`.
    """
    case = case or build_case_study(platform=platform)
    options = design_options or design_options_for_profile()
    run_reports: list[RunReport] = []

    def fresh_engine() -> SearchEngine:
        return SearchEngine(
            case.evaluator(options),
            workers=workers,
            cache_dir=cache_dir,
            platform=platform,
            on_event=on_event,
        )

    with fresh_engine() as evaluator:
        space = enumerate_idle_feasible(case.apps, case.clock)
        started = time.perf_counter()
        exhaustive = get_strategy("exhaustive").run(
            evaluator, space, StrategySpec()
        )
        # Snapshot before the infeasibility/round-robin extras below, so
        # the embedded report accounts the exhaustive sweep alone.
        exhaustive_scenario = Scenario(
            name="casestudy-exhaustive",
            apps=case.apps,
            clock=case.clock,
            design_options=options,
            strategy="exhaustive",
            platform=platform,
        )
        run_reports.append(
            RunReport.from_outcome(
                exhaustive_scenario,
                ScenarioOutcome(
                    name=exhaustive_scenario.name,
                    strategy="exhaustive",
                    result=exhaustive,
                    wall_time=time.perf_counter() - started,
                    n_space=len(space),
                    engine_stats=evaluator.stats.as_dict(),
                    backend=evaluator.backend_name,
                    n_apps=len(case.apps),
                ),
            )
        )

        engine_options = EngineOptions(workers=workers, cache_dir=cache_dir)
        hybrid_counts: dict[tuple[int, ...], int] = {}
        hybrid_optima: dict[tuple[int, ...], PeriodicSchedule] = {}
        for start in starts:
            # A fresh engine per start (via the scenario runner) so the
            # evaluation count reflects a standalone search (the paper
            # reports per-start counts); each engine is closed as soon
            # as its search ends so worker pools don't pile up.
            scenario = Scenario(
                name=f"casestudy-hybrid-{_start_label(start)}",
                apps=case.apps,
                clock=case.clock,
                design_options=options,
                strategy="hybrid",
                starts=(start,),
                platform=platform,
            )
            outcome = run_scenario(scenario, engine_options, on_event=on_event)
            hybrid_counts[start.counts] = outcome.result.traces[0].n_evaluations
            hybrid_optima[start.counts] = outcome.result.best_schedule
            run_reports.append(RunReport.from_outcome(scenario, outcome))

        infeasible = [
            schedule
            for schedule in space
            if not evaluator.evaluate(schedule).feasible
        ]
        round_robin = evaluator.evaluate(PeriodicSchedule.round_robin(len(case.apps)))
    return SearchResultSummary(
        n_enumerated=len(space),
        n_feasible=exhaustive.stats["n_feasible"],
        optimum=exhaustive.best_schedule,
        best_overall=exhaustive.best_value,
        round_robin_overall=round_robin.overall,
        hybrid_evaluations=hybrid_counts,
        hybrid_optima=hybrid_optima,
        infeasible_schedules=infeasible,
        run_reports=run_reports,
    )


@register_experiment
class SearchExperiment:
    """Section V search statistics — exhaustive vs hybrid."""

    name = "search"
    supports_out = False

    def build(self, request: ExperimentRequest) -> ExperimentReport:
        result = run(
            design_options=request.design_options,
            workers=request.workers,
            cache_dir=request.cache_dir,
            platform=request.platform,
            on_event=request.on_event,
        )
        data = {
            "n_enumerated": int(result.n_enumerated),
            "n_feasible": int(result.n_feasible),
            "optimum": list(result.optimum.counts),
            "best_overall": float(result.best_overall),
            "round_robin_overall": float(result.round_robin_overall),
            "hybrid": [
                {
                    "start": list(start),
                    "evaluations": int(result.hybrid_evaluations[start]),
                    "optimum": list(result.hybrid_optima[start].counts),
                }
                for start in result.hybrid_evaluations
            ],
            "infeasible": [
                list(schedule.counts)
                for schedule in result.infeasible_schedules
            ],
        }
        return new_report(
            self.name,
            data=data,
            run_reports=result.run_reports,
            platform=request.platform,
        )

    def render(self, report: ExperimentReport) -> str:
        return self.result_from(report).render()

    @staticmethod
    def result_from(report: ExperimentReport) -> SearchResultSummary:
        """Rebuild the summary from a (possibly resumed) report."""
        data = report.data
        return SearchResultSummary(
            n_enumerated=int(data["n_enumerated"]),
            n_feasible=int(data["n_feasible"]),
            optimum=PeriodicSchedule(tuple(data["optimum"])),
            best_overall=float(data["best_overall"]),
            round_robin_overall=float(data["round_robin_overall"]),
            hybrid_evaluations={
                tuple(entry["start"]): int(entry["evaluations"])
                for entry in data["hybrid"]
            },
            hybrid_optima={
                tuple(entry["start"]): PeriodicSchedule(tuple(entry["optimum"]))
                for entry in data["hybrid"]
            },
            infeasible_schedules=[
                PeriodicSchedule(tuple(counts)) for counts in data["infeasible"]
            ],
            run_reports=list(report.run_reports),
        )

