"""Pluggable experiment registry — the paper-artifact front door.

An *experiment* is the unit of extensibility of the artifact layer: it
receives an :class:`ExperimentRequest` (platform, strategy, engine
configuration, progress callback) and returns a structured
:class:`~repro.experiments.report.ExperimentReport`.  Experiments
register themselves by name with :func:`register_experiment`; every
entry point (``python -m repro experiment <name>``, the deprecated
``python -m repro.experiments`` shim, the resume-aware
:func:`run_experiment` runner) resolves names through
:func:`get_experiment`, so an unknown name fails fast with the list of
registered experiments — the exact contract of the search-strategy
(:mod:`repro.sched.strategies`) and WCET-model
(:mod:`repro.wcet.models`) registries.

Eight experiments are builtin: one per paper artifact — ``table1``,
``table2``, ``table3``, ``fig6``, ``search``, ``multicore``,
``shared_cache`` — plus ``feedback``, the runtime feedback-scheduling
comparison built on :mod:`repro.sim` (each registered by its module
under :mod:`repro.experiments`).

Rendering is split from running: :meth:`ExperimentSpec.build` produces
the report, :meth:`ExperimentSpec.render` turns a report — fresh or
resumed from disk — into the table/figure text.  That split is what
makes ``--run-dir`` resume byte-identical: a rerun loads the persisted
JSON and renders it without re-searching.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Protocol, runtime_checkable

from ..control.design import DesignOptions
from ..errors import ConfigurationError
from ..platform import Platform
from ..study.report import _json_safe
from .profiles import current_profile
from .report import ExperimentReport


@dataclass(frozen=True)
class ExperimentRequest:
    """Run-time inputs of one experiment, CLI flags made explicit.

    Parameters
    ----------
    design_options:
        Controller-design budget; ``None`` uses the ``REPRO_PROFILE``
        profile (the CLI path).
    platform:
        Execution platform to rebuild the case study on; ``None`` is
        the paper platform.
    strategy:
        Registered search strategy for search-backed experiments;
        ``None`` keeps each experiment's default.  Experiments that
        run no search ignore it.
    workers / cache_dir:
        Engine configuration for search-backed experiments (worker
        processes, persistent evaluation cache).
    max_count_per_core:
        Burst-length cap per core for the multicore experiments.
    out:
        Output directory for experiments that write files
        (only ``fig6`` — see :attr:`ExperimentSpec.supports_out`).
    on_event:
        Receives the engines' typed progress events
        (:mod:`repro.sched.engine.events`) while searches run.
    """

    design_options: DesignOptions | None = None
    platform: Platform | None = None
    strategy: str | None = None
    workers: int = 0
    cache_dir: str | Path | None = None
    max_count_per_core: int = 6
    out: str | Path | None = None
    on_event: Callable | None = field(default=None, compare=False)

    def signature(self) -> dict:
        """JSON-safe record of the result-affecting request fields.

        Engine plumbing (``workers``, ``cache_dir``), output paths and
        callbacks change *how fast* or *where*, never *what*, so only
        the strategy and an explicit design-options override enter the
        signature the resume logic compares.
        """
        return _json_safe(
            {
                "strategy": self.strategy,
                # asdict recurses into the nested PSO stage options, so
                # two budgets differing only there never share a report.
                "design_options": (
                    asdict(self.design_options)
                    if self.design_options is not None
                    else None
                ),
                "max_count_per_core": self.max_count_per_core,
            }
        )


@runtime_checkable
class ExperimentSpec(Protocol):
    """What a pluggable experiment must provide.

    ``name`` is the registry key; ``build`` runs the experiment and
    returns its structured report; ``render`` turns any report of this
    experiment (freshly built or resumed from disk) into the
    table/figure text.  ``supports_out`` marks experiments that write
    output files from :attr:`ExperimentRequest.out` (only ``fig6``
    builtin; such experiments must also define ``write_outputs(report,
    directory)``); the CLI rejects ``--out`` for all others.

    Optional attributes: ``supports_strategy`` marks experiments that
    honor :attr:`ExperimentRequest.strategy` (builtin: ``multicore``,
    ``shared_cache``; requesting a strategy elsewhere fails fast
    instead of being silently ignored), and ``default_platform`` — a
    zero-argument callable — declares the platform an experiment runs
    on when the request names none (builtin: ``shared_cache`` uses
    :func:`~repro.platform.shared_paper_platform`).
    """

    name: str
    supports_out: bool

    def build(self, request: ExperimentRequest) -> ExperimentReport:
        ...

    def render(self, report: ExperimentReport) -> str:
        ...


#: The global registry: experiment name -> experiment instance.
_REGISTRY: dict[str, ExperimentSpec] = {}


def register_experiment(experiment):
    """Register an experiment class (or instance) under its ``name``.

    Usable as a class decorator::

        @register_experiment
        class MyExperiment:
            name = "mine"
            supports_out = False

            def build(self, request):
                ...

            def render(self, report):
                ...

    Returns its argument so the decorated class stays usable.  Double
    registration of one name raises
    :class:`~repro.errors.ConfigurationError`.
    """
    instance = experiment() if isinstance(experiment, type) else experiment
    name = getattr(instance, "name", None)
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"experiment {experiment!r} must define a non-empty string `name`"
        )
    for method in ("build", "render"):
        if not callable(getattr(instance, method, None)):
            raise ConfigurationError(
                f"experiment {name!r} must define a `{method}` method"
            )
    if getattr(instance, "supports_out", False) and not callable(
        getattr(instance, "write_outputs", None)
    ):
        raise ConfigurationError(
            f"experiment {name!r} declares supports_out but defines no "
            "`write_outputs` method"
        )
    if name in _REGISTRY:
        raise ConfigurationError(f"experiment {name!r} is already registered")
    _REGISTRY[name] = instance
    return experiment


def unregister_experiment(name: str) -> None:
    """Remove a registered experiment (mainly for tests of third-party
    registration; the builtin experiments should stay registered)."""
    _REGISTRY.pop(name, None)


def available_experiments() -> tuple[str, ...]:
    """Names of all registered experiments, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def get_experiment(name: str) -> ExperimentSpec:
    """Resolve an experiment name, failing fast on unknown names."""
    _ensure_builtins()
    experiment = _REGISTRY.get(name)
    if experiment is None:
        raise ConfigurationError(
            f"unknown experiment {name!r}; registered experiments: "
            f"{', '.join(available_experiments())}"
        )
    return experiment


def experiment_description(experiment: ExperimentSpec) -> str:
    """First docstring line of an experiment (for listings)."""
    doc = (getattr(experiment, "__doc__", None) or "").strip()
    return doc.splitlines()[0] if doc else ""


def _ensure_builtins() -> None:
    """Import the builtin experiment modules (each registers itself).

    Deferred to first registry use: the experiment modules import the
    apps/control stack, which itself imports this package.
    """
    from . import (  # noqa: F401
        feedback,
        fig6,
        multicore,
        search,
        shared_cache,
        table1,
        table2,
        table3,
    )


# ----------------------------------------------------------------------
# Resume-aware runner
# ----------------------------------------------------------------------

def _expected_platform(name: str, request: ExperimentRequest) -> dict:
    """Fingerprint of the platform this run will actually build on.

    ``request.platform`` wins; otherwise the experiment's own declared
    default (``shared_cache`` runs on the shared paper platform, not
    the direct-mapped paper cache); otherwise the paper platform.
    """
    if request.platform is not None:
        return request.platform.fingerprint()
    default = getattr(get_experiment(name), "default_platform", None)
    platform = default() if callable(default) else None
    return (platform or Platform()).fingerprint()


def experiment_report_path(
    run_dir: str | Path, name: str, request: ExperimentRequest
) -> Path:
    """Where one experiment's report persists under ``run_dir``.

    The filename carries the profile plus a short digest of the
    result-affecting request fields (strategy, design options,
    platform), so differently-configured runs of one experiment never
    collide on a single artifact.
    """
    spec = json.dumps(
        [request.signature(), _expected_platform(name, request)],
        sort_keys=True,
    )
    tag = hashlib.sha256(spec.encode()).hexdigest()[:8]
    return Path(run_dir) / f"experiment-{name}--{current_profile()}--{tag}.json"


def _resumable(
    name: str, request: ExperimentRequest, report: ExperimentReport
) -> bool:
    """Whether a persisted report answers this exact experiment run."""
    return (
        report.schema_version == ExperimentReport.schema_version
        and report.experiment == name
        and report.profile == current_profile()
        and report.platform == _expected_platform(name, request)
        and report.request == request.signature()
    )


def load_experiment_report(
    run_dir: str | Path, name: str, request: ExperimentRequest
) -> ExperimentReport | None:
    """The persisted report answering this run, or ``None``."""
    path = experiment_report_path(run_dir, name, request)
    if not path.exists():
        return None
    try:
        report = ExperimentReport.from_json(path.read_text())
    except (ValueError, KeyError, TypeError):
        return None  # corrupt or foreign artifact: recompute
    return report if _resumable(name, request, report) else None


def run_experiment(
    name: str,
    request: ExperimentRequest | None = None,
    run_dir: str | Path | None = None,
    resume: bool = True,
) -> ExperimentReport:
    """Run one registered experiment, persisting/resuming via ``run_dir``.

    With a run directory the report persists as JSON after the run,
    and (``resume=True``) a rerun whose persisted report matches —
    same experiment, profile, platform and request signature — is
    served from disk without recomputing.  Rendering the resumed
    report is byte-identical to rendering the original (rendering is a
    pure function of the report).

    ``--out``-style file outputs are only supported by experiments
    declaring ``supports_out`` (builtin: ``fig6``); requesting one
    elsewhere raises :class:`~repro.errors.ConfigurationError`.
    """
    spec = get_experiment(name)
    request = request or ExperimentRequest()
    validate_request(name, request)
    if run_dir is not None and resume:
        existing = load_experiment_report(run_dir, name, request)
        if existing is not None:
            if request.out is not None:
                spec.write_outputs(existing, request.out)
            return existing
    started = time.perf_counter()
    report = spec.build(request)
    report.wall_time = time.perf_counter() - started
    report.profile = current_profile()
    report.request = request.signature()
    if run_dir is not None:
        path = experiment_report_path(run_dir, name, request)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report.to_json() + "\n")
    if request.out is not None:
        # An explicitly requested output directory is honored here, so
        # library callers get their files too (resumed runs re-create
        # them from the report's data, identically).
        spec.write_outputs(report, request.out)
    return report


def _supporting(flag: str) -> str:
    """Comma-joined names of the experiments declaring ``flag``."""
    return ", ".join(
        name
        for name in available_experiments()
        if getattr(get_experiment(name), flag, False)
    )


def validate_request(name: str, request: ExperimentRequest) -> None:
    """Reject request fields the experiment would silently ignore.

    Raises :class:`~repro.errors.ConfigurationError` when ``out`` or
    ``strategy`` is set for an experiment that does not consume it.
    Called by :func:`run_experiment`; the CLI calls it up front so a
    rejected invocation produces no partial output.
    """
    spec = get_experiment(name)
    if request.out is not None and not getattr(spec, "supports_out", False):
        raise ConfigurationError(
            f"experiment {name!r} writes no output files; "
            "--out is only supported by: " + _supporting("supports_out")
        )
    if request.strategy is not None and not getattr(
        spec, "supports_strategy", False
    ):
        raise ConfigurationError(
            f"experiment {name!r} runs a fixed search; "
            "--strategy is only supported by: "
            + _supporting("supports_strategy")
        )
    default_cap = ExperimentRequest().max_count_per_core
    if request.max_count_per_core != default_cap and not getattr(
        spec, "supports_max_count", False
    ):
        raise ConfigurationError(
            f"experiment {name!r} has no per-core schedule spaces; "
            "--max-count-per-core is only supported by: "
            + _supporting("supports_max_count")
        )


def render_experiment(
    name: str, report: ExperimentReport, out: str | Path | None = None
) -> str:
    """Render a report — fresh or resumed — as its table/figure text.

    For experiments with file outputs (``fig6``), ``out`` additionally
    writes them (CSV files re-created from the report's data, so a
    resumed run writes the same files) and appends the written paths.
    """
    spec = get_experiment(name)
    text = spec.render(report)
    if out is not None:
        if not getattr(spec, "supports_out", False):
            raise ConfigurationError(
                f"experiment {name!r} writes no output files"
            )
        paths = spec.write_outputs(report, out)
        text += "\n\nCSV written to: " + ", ".join(str(p) for p in paths)
    return text


def effective_out(name: str, request: ExperimentRequest) -> str | Path | None:
    """The output directory a run will actually write to.

    ``request.out`` wins; file-writing experiments fall back to their
    own default (``fig6`` writes its CSVs to ``fig6_out``), everything
    else writes nothing.
    """
    if request.out is not None:
        return request.out
    spec = get_experiment(name)
    if getattr(spec, "supports_out", False):
        return getattr(spec, "default_out", None)
    return None


def run_and_render(
    name: str,
    request: ExperimentRequest | None = None,
    run_dir: str | Path | None = None,
) -> str:
    """Run (or resume) one experiment and render it — the single text
    code path shared by ``python -m repro experiment`` and the
    deprecated ``python -m repro.experiments`` shim, which is what
    keeps their rendered tables byte-identical.

    ``request.out`` is the output directory for file-writing
    experiments (rejected for all others); ``None`` falls back to
    :func:`effective_out`'s default, so both CLIs behave identically
    with and without the flag.
    """
    request = request or ExperimentRequest()
    report = run_experiment(name, request, run_dir=run_dir)
    return render_experiment(name, report, out=effective_out(name, request))
