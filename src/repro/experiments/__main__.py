"""Command-line entry point: ``python -m repro.experiments <name>``.

Names: ``table1``, ``table2``, ``table3``, ``fig6``, ``search``,
``multicore``, ``shared_cache``, ``all``.  ``fig6`` additionally writes
CSV files (``--out DIR``, default ``./fig6_out``).  The design budget
follows ``REPRO_PROFILE`` (quick / standard / full).
"""

from __future__ import annotations

import argparse
import sys

from . import fig6, multicore, search, shared_cache, table1, table2, table3
from .profiles import current_profile

EXPERIMENTS = {
    "table1": lambda args: table1.run().render(),
    "table2": lambda args: table2.run().render(),
    "table3": lambda args: table3.run().render(),
    "fig6": lambda args: _run_fig6(args),
    "search": lambda args: search.run().render(),
    "multicore": lambda args: multicore.run().render(),
    "shared_cache": lambda args: shared_cache.run().render(),
}


def _run_fig6(args: argparse.Namespace) -> str:
    result = fig6.run()
    paths = result.write_csv(args.out)
    rendered = result.render()
    return rendered + "\n\nCSV written to: " + ", ".join(str(p) for p in paths)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--out",
        default="fig6_out",
        help="output directory for fig6 CSV files",
    )
    args = parser.parse_args(argv)
    print(f"[profile: {current_profile()}]")
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(EXPERIMENTS[name](args))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
