"""Deprecated shim: ``python -m repro.experiments <name>``.

The experiment front door moved to the top-level CLI — ``python -m
repro experiments`` lists the registered experiments and ``python -m
repro experiment <name>`` runs one (with ``--json``, ``--run-dir``,
``--strategy``, platform flags, ...).  This module remains so existing
invocations keep working: it emits a single :class:`DeprecationWarning`
and delegates to exactly the code path the new CLI uses, so the
rendered tables are byte-identical.

``--out`` only ever applied to ``fig6``; it now fails fast for every
other experiment instead of being silently ignored.  (One cosmetic
difference from the historical shim: the trailing blank line after the
last experiment is gone — blank lines now only separate the
experiments of ``all`` — because byte-identity with the new CLI takes
precedence.)
"""

from __future__ import annotations

import argparse
import sys
import warnings

from ..errors import ReproError
from .profiles import current_profile
from .registry import (
    ExperimentRequest,
    available_experiments,
    get_experiment,
    run_and_render,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures "
        "(deprecated; use `python -m repro experiment <name>`).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(available_experiments()) + ["all"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output directory for fig6 CSV files (default: fig6_out; "
        "rejected for experiments that write no files)",
    )
    args = parser.parse_args(argv)
    warnings.warn(
        "python -m repro.experiments is deprecated; use "
        "`python -m repro experiment <name>` (or `python -m repro "
        "experiments` to list them)",
        DeprecationWarning,
        stacklevel=2,
    )
    print(f"[profile: {current_profile()}]")
    if args.experiment == "all":
        names = sorted(available_experiments())
        # --out stays scoped to the experiments that support it.
        outs = {
            name: args.out
            for name in names
            if getattr(get_experiment(name), "supports_out", False)
        }
    else:
        names = [args.experiment]
        outs = {args.experiment: args.out}
    try:
        for position, name in enumerate(names):
            if position:
                print()  # separator between experiments of `all`
            print(run_and_render(name, ExperimentRequest(out=outs.get(name))))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
