"""Experiment E4 — paper Figure 6: system-output responses.

Simulates every application's worst-case tracking response under the
cache-oblivious (1,1,1) and cache-aware (3,2,3) schedules using the
controllers the holistic design produces, and renders the trajectories
as ASCII plots (the environment has no matplotlib) plus CSV files for
external plotting.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..apps.casestudy import CaseStudy, build_case_study
from ..control.design import DesignOptions
from ..control.simulate import build_simulation_plan, simulate_tracking
from ..sched.schedule import PeriodicSchedule
from ..viz.ascii_plot import plot_series
from .profiles import design_options_for_profile
from .registry import ExperimentRequest, register_experiment
from .report import ExperimentReport, new_report

#: Simulated duration after the reference step, matching the figure.
FIGURE_HORIZON = 0.05

#: Axis labels per application, matching the paper's figure.
OUTPUT_LABELS = {
    "C1": "system output y[k] [rad]",
    "C2": "system output y[k] [round/s]",
    "C3": "system output y[k] [N]",
}


@dataclass
class ResponseSeries:
    """One application's pair of trajectories."""

    app_name: str
    reference: float
    times_rr: np.ndarray
    outputs_rr: np.ndarray
    times_ca: np.ndarray
    outputs_ca: np.ndarray
    settling_rr: float
    settling_ca: float


@dataclass
class Fig6Result:
    """All six trajectories."""

    series: list[ResponseSeries]

    def render(self) -> str:
        blocks = []
        for entry in self.series:
            blocks.append(
                plot_series(
                    {
                        "cache-oblivious (1,1,1)": (entry.times_rr, entry.outputs_rr),
                        "optimal cache-aware": (entry.times_ca, entry.outputs_ca),
                    },
                    title=(
                        f"Fig. 6 — application {entry.app_name}: settling "
                        f"{entry.settling_rr * 1e3:.2f} ms -> {entry.settling_ca * 1e3:.2f} ms"
                    ),
                    y_label=OUTPUT_LABELS[entry.app_name],
                    x_label="time [s]",
                )
            )
        return "\n\n".join(blocks)

    def write_csv(self, directory: str | Path) -> list[Path]:
        """Dump each trajectory pair as ``fig6_<app>.csv``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for entry in self.series:
            path = directory / f"fig6_{entry.app_name.lower()}.csv"
            with open(path, "w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(["schedule", "time_s", "output"])
                for t, y in zip(entry.times_rr, entry.outputs_rr):
                    writer.writerow(["(1,1,1)", f"{t:.6e}", f"{y:.6e}"])
                for t, y in zip(entry.times_ca, entry.outputs_ca):
                    writer.writerow(["(3,2,3)", f"{t:.6e}", f"{y:.6e}"])
            paths.append(path)
        return paths


def _trajectory(case: CaseStudy, evaluator, schedule, app_index):
    evaluation = evaluator.evaluate(schedule)
    app_eval = evaluation.apps[app_index]
    app = case.apps[app_index]
    timing = app_eval.timing
    plan = build_simulation_plan(
        app.plant.a, app.plant.b, app.plant.c,
        list(timing.periods), list(timing.delays), nsub=8,
    )
    x0, u0 = app.plant.equilibrium(app.spec.y0)
    result = simulate_tracking(
        plan,
        app_eval.design.gains,
        app_eval.design.feedforward,
        r=app.spec.r,
        x0=x0,
        u0=u0,
        horizon=FIGURE_HORIZON,
        band=app.spec.band,
        record=True,
    )
    return result.times, result.outputs[0], app_eval.settling


def run(
    case: CaseStudy | None = None,
    design_options: DesignOptions | None = None,
) -> Fig6Result:
    """Regenerate Figure 6's trajectories."""
    case = case or build_case_study()
    evaluator = case.evaluator(design_options or design_options_for_profile())
    rr = PeriodicSchedule.round_robin(len(case.apps))
    ca = PeriodicSchedule.of(3, 2, 3)
    series = []
    for index, app in enumerate(case.apps):
        t_rr, y_rr, s_rr = _trajectory(case, evaluator, rr, index)
        t_ca, y_ca, s_ca = _trajectory(case, evaluator, ca, index)
        series.append(
            ResponseSeries(
                app_name=app.name,
                reference=app.spec.r,
                times_rr=t_rr,
                outputs_rr=y_rr,
                times_ca=t_ca,
                outputs_ca=y_ca,
                settling_rr=s_rr,
                settling_ca=s_ca,
            )
        )
    return Fig6Result(series=series)


@register_experiment
class Fig6Experiment:
    """Figure 6 — system-output responses under both schedules."""

    name = "fig6"
    supports_out = True
    #: Historical CLI default for the CSV directory.
    default_out = "fig6_out"

    def build(self, request: ExperimentRequest) -> ExperimentReport:
        case = (
            build_case_study(platform=request.platform)
            if request.platform
            else None
        )
        result = run(case, request.design_options)
        return new_report(
            self.name,
            data={
                "series": [
                    {
                        "app_name": entry.app_name,
                        "reference": float(entry.reference),
                        "times_rr": [float(t) for t in entry.times_rr],
                        "outputs_rr": [float(y) for y in entry.outputs_rr],
                        "times_ca": [float(t) for t in entry.times_ca],
                        "outputs_ca": [float(y) for y in entry.outputs_ca],
                        "settling_rr": float(entry.settling_rr),
                        "settling_ca": float(entry.settling_ca),
                    }
                    for entry in result.series
                ]
            },
            platform=request.platform,
        )

    def render(self, report: ExperimentReport) -> str:
        return self.result_from(report).render()

    def write_outputs(self, report: ExperimentReport, directory) -> list[Path]:
        """Write the CSV files from a (possibly resumed) report."""
        return self.result_from(report).write_csv(directory)

    @staticmethod
    def result_from(report: ExperimentReport) -> Fig6Result:
        """Rebuild the result object from a (possibly resumed) report."""
        return Fig6Result(
            series=[
                ResponseSeries(
                    app_name=entry["app_name"],
                    reference=entry["reference"],
                    times_rr=np.asarray(entry["times_rr"]),
                    outputs_rr=np.asarray(entry["outputs_rr"]),
                    times_ca=np.asarray(entry["times_ca"]),
                    outputs_ca=np.asarray(entry["outputs_ca"]),
                    settling_rr=entry["settling_rr"],
                    settling_ca=entry["settling_ca"],
                )
                for entry in report.data["series"]
            ]
        )
