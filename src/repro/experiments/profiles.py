"""Evaluation-effort profiles.

Controller design is the expensive inner loop ("seconds to hours" per
schedule in the paper).  The profile picks the swarm budget:

* ``quick`` — smoke-test budget for unit tests and CI;
* ``standard`` — the default; stable, honest designs (multi-restart);
* ``full`` — the budget used for the numbers recorded in EXPERIMENTS.md.

Select via the ``REPRO_PROFILE`` environment variable or pass a profile
name explicitly to :func:`design_options_for_profile`.
"""

from __future__ import annotations

import os

from ..control.design import DesignOptions
from ..control.pso import PsoOptions
from ..errors import ConfigurationError

PROFILES = {
    "quick": DesignOptions(
        restarts=1,
        stage_a=PsoOptions(12, 12),
        stage_b=PsoOptions(16, 15),
    ),
    "standard": DesignOptions(),
    "full": DesignOptions(
        restarts=4,
        stage_a=PsoOptions(24, 30),
        stage_b=PsoOptions(32, 40),
    ),
}


def current_profile() -> str:
    """Profile selected by ``REPRO_PROFILE`` (default ``standard``)."""
    profile = os.environ.get("REPRO_PROFILE", "standard")
    if profile not in PROFILES:
        raise ConfigurationError(
            f"unknown REPRO_PROFILE {profile!r}; choose from {sorted(PROFILES)}"
        )
    return profile


def design_options_for_profile(profile: str | None = None) -> DesignOptions:
    """Design options for a named profile (or the environment's)."""
    name = profile or current_profile()
    if name not in PROFILES:
        raise ConfigurationError(
            f"unknown profile {name!r}; choose from {sorted(PROFILES)}"
        )
    return PROFILES[name]
