"""Experiment E7 — private caches vs one way-partitioned shared cache.

The paper's Section-VI extension gives every core a private copy of the
instruction cache.  Real multicore microcontrollers often share one
set-associative cache instead; partitioning its *ways* between the
cores (Sun et al.'s cache-partitioning / task-scheduling co-design)
isolates them again, at the price of smaller per-core capacity.  This
experiment quantifies that price on the case study: the same
set-associative platform is co-designed twice —

* **private**: every core owns the full cache (the classic sweep);
* **shared**: the cores split the cache's ways, and the way allocation
  is co-optimized with the partition and the per-core schedules —

and the gap between the two optima is the capacity cost of sharing
(equivalently: the gain private caches buy).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from ..apps.casestudy import CaseStudy, build_case_study
from ..control.design import DesignOptions
from ..core.report import render_table
from ..multicore.partition import MulticoreEvaluation, MulticoreProblem
from ..platform import Platform, platform_from_fingerprint, shared_paper_platform
from ..study.report import RunReport
from .multicore import (
    MulticoreSummary,
    evaluation_from_data,
    evaluation_to_data,
    summary_run_report,
)
from .profiles import design_options_for_profile
from .registry import ExperimentRequest, register_experiment
from .report import ExperimentReport, new_report


@dataclass
class SharedCacheSummary:
    """Shared-cache co-design next to the private-cache baseline."""

    n_cores: int
    app_names: list[str]
    platform: Platform
    private: MulticoreEvaluation
    shared: MulticoreEvaluation
    engine_summary: str
    backend: str = "serial"
    private_stats: dict = field(default_factory=dict)
    shared_stats: dict = field(default_factory=dict)
    private_wall: float = 0.0
    shared_wall: float = 0.0
    max_count_per_core: int = 6

    @property
    def partitioning_gain(self) -> float:
        """P_all advantage of private caches over the shared cache."""
        return self.private.overall - self.shared.overall

    def render(self) -> str:
        def rows_for(evaluation: MulticoreEvaluation) -> list[list[str]]:
            rows = []
            for core_index, core in enumerate(evaluation.cores):
                names = ", ".join(self.app_names[i] for i in core.app_indices)
                rows.append(
                    [
                        str(core_index),
                        names,
                        "full" if core.ways is None else str(core.ways),
                        str(core.schedule),
                        ", ".join(
                            f"{evaluation.settling[i] * 1e3:.2f}"
                            for i in core.app_indices
                        ),
                    ]
                )
            return rows

        cache = self.platform.cache
        header = ["core", "apps", "ways", "schedule", "settling (ms)"]
        private_table = render_table(
            header,
            rows_for(self.private),
            title=f"private caches ({cache.n_sets} x {cache.associativity} ways each)",
        )
        shared_table = render_table(
            header,
            rows_for(self.shared),
            title=f"shared cache ({cache.associativity} ways partitioned)",
        )
        return (
            private_table
            + f"\nprivate P_all = {self.private.overall:.4f}"
            + "\n\n"
            + shared_table
            + f"\nshared  P_all = {self.shared.overall:.4f}"
            + "\n\nprivate-vs-shared partitioning gain: "
            f"{self.partitioning_gain:+.4f}"
            + f"\nengine: {self.engine_summary}"
        )


def run(
    case: CaseStudy | None = None,
    design_options: DesignOptions | None = None,
    n_cores: int = 2,
    platform: Platform | None = None,
    max_count_per_core: int = 6,
    workers: int = 0,
    cache_dir: str | Path | None = None,
    strategy: str | None = None,
    on_event=None,
) -> SharedCacheSummary:
    """Run the private-vs-shared comparison on one platform.

    Both sweeps run through the partitioned engine; with a
    ``cache_dir`` they share disk entries wherever a block's way
    allocation equals the full geometry.  ``strategy`` picks the
    per-core schedule search (default ``exhaustive``); ``on_event``
    receives both engines' typed progress events.
    """
    platform = platform or shared_paper_platform()
    case = case or build_case_study(platform=platform)
    options = design_options or design_options_for_profile()
    started = time.perf_counter()
    with MulticoreProblem(
        case.apps,
        case.clock,
        n_cores=n_cores,
        design_options=options,
        max_count_per_core=max_count_per_core,
        workers=workers,
        cache_dir=cache_dir,
        platform=platform,
        on_event=on_event,
    ) as problem:
        private = problem.optimize(strategy=strategy or "exhaustive")
        private_summary = problem.engine.stats.summary()
        private_stats = problem.engine.stats.as_dict()
        backend = problem.engine.backend_name
    private_wall = time.perf_counter() - started
    started = time.perf_counter()
    with MulticoreProblem(
        case.apps,
        case.clock,
        n_cores=n_cores,
        design_options=options,
        max_count_per_core=max_count_per_core,
        workers=workers,
        cache_dir=cache_dir,
        platform=platform,
        shared_cache=True,
        on_event=on_event,
    ) as problem:
        shared = problem.optimize(strategy=strategy or "exhaustive")
        shared_summary = problem.engine.stats.summary()
        shared_stats = problem.engine.stats.as_dict()
    shared_wall = time.perf_counter() - started
    return SharedCacheSummary(
        n_cores=n_cores,
        app_names=[app.name for app in case.apps],
        platform=platform,
        private=private,
        shared=shared,
        engine_summary=f"private: {private_summary}; shared: {shared_summary}",
        backend=backend,
        private_stats=private_stats,
        shared_stats=shared_stats,
        private_wall=private_wall,
        shared_wall=shared_wall,
        max_count_per_core=max_count_per_core,
    )


@register_experiment
class SharedCacheExperiment:
    """Private caches vs one way-partitioned shared cache."""

    name = "shared_cache"
    supports_out = False
    supports_strategy = True  # per-core schedule search
    supports_max_count = True  # per-core burst-length cap
    #: Without an explicit platform the co-design needs ways to
    #: partition, so it runs on the shared paper platform — declared
    #: here so run-dir resume compares against the right fingerprint.
    default_platform = staticmethod(shared_paper_platform)

    def build(self, request: ExperimentRequest) -> ExperimentReport:
        platform = request.platform or shared_paper_platform()
        case = build_case_study(platform=platform)
        options = request.design_options or design_options_for_profile()
        summary = run(
            case=case,
            design_options=options,
            platform=platform,
            max_count_per_core=request.max_count_per_core,
            workers=request.workers,
            cache_dir=request.cache_dir,
            strategy=request.strategy,
            on_event=request.on_event,
        )
        data = {
            "n_cores": int(summary.n_cores),
            "app_names": list(summary.app_names),
            "private": evaluation_to_data(summary.private),
            "shared": evaluation_to_data(summary.shared),
            "engine_summary": summary.engine_summary,
            "backend": summary.backend,
            "private_stats": summary.private_stats,
            "shared_stats": summary.shared_stats,
            "private_wall": float(summary.private_wall),
            "shared_wall": float(summary.shared_wall),
            "max_count_per_core": int(summary.max_count_per_core),
        }
        run_reports = [
            self._run_report(summary, case, options, platform, request.strategy,
                             shared_cache=False),
            self._run_report(summary, case, options, platform, request.strategy,
                             shared_cache=True),
        ]
        return new_report(
            self.name, data=data, run_reports=run_reports, platform=platform
        )

    @staticmethod
    def _run_report(
        summary: SharedCacheSummary,
        case: CaseStudy,
        options: DesignOptions,
        platform: Platform,
        strategy: str | None,
        shared_cache: bool,
    ) -> RunReport:
        """One sweep (private or shared) as a structured run report."""
        side = "shared" if shared_cache else "private"
        proxy = MulticoreSummary(
            n_cores=summary.n_cores,
            app_names=summary.app_names,
            best=summary.shared if shared_cache else summary.private,
            single_schedule=None,
            single_overall=None,
            engine_stats=(
                summary.shared_stats if shared_cache else summary.private_stats
            ),
            engine_summary=summary.engine_summary,
            backend=summary.backend,
            wall_time=(
                summary.shared_wall if shared_cache else summary.private_wall
            ),
            max_count_per_core=summary.max_count_per_core,
        )
        return summary_run_report(
            proxy,
            case,
            options,
            platform,
            strategy,
            shared_cache=shared_cache,
            name=f"casestudy-{side}",
        )

    def render(self, report: ExperimentReport) -> str:
        return self.result_from(report).render()

    @staticmethod
    def result_from(report: ExperimentReport) -> SharedCacheSummary:
        """Rebuild the summary from a (possibly resumed) report."""
        data = report.data
        return SharedCacheSummary(
            n_cores=int(data["n_cores"]),
            app_names=list(data["app_names"]),
            platform=platform_from_fingerprint(report.platform),
            private=evaluation_from_data(data["private"]),
            shared=evaluation_from_data(data["shared"]),
            engine_summary=str(data["engine_summary"]),
            backend=str(data["backend"]),
            private_stats=dict(data["private_stats"]),
            shared_stats=dict(data["shared_stats"]),
            private_wall=float(data["private_wall"]),
            shared_wall=float(data["shared_wall"]),
            max_count_per_core=int(data["max_count_per_core"]),
        )
