"""Experiment E7 — private caches vs one way-partitioned shared cache.

The paper's Section-VI extension gives every core a private copy of the
instruction cache.  Real multicore microcontrollers often share one
set-associative cache instead; partitioning its *ways* between the
cores (Sun et al.'s cache-partitioning / task-scheduling co-design)
isolates them again, at the price of smaller per-core capacity.  This
experiment quantifies that price on the case study: the same
set-associative platform is co-designed twice —

* **private**: every core owns the full cache (the classic sweep);
* **shared**: the cores split the cache's ways, and the way allocation
  is co-optimized with the partition and the per-core schedules —

and the gap between the two optima is the capacity cost of sharing
(equivalently: the gain private caches buy).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..apps.casestudy import CaseStudy, build_case_study
from ..control.design import DesignOptions
from ..core.report import render_table
from ..multicore.partition import MulticoreEvaluation, MulticoreProblem
from ..platform import Platform, shared_paper_platform


@dataclass
class SharedCacheSummary:
    """Shared-cache co-design next to the private-cache baseline."""

    n_cores: int
    app_names: list[str]
    platform: Platform
    private: MulticoreEvaluation
    shared: MulticoreEvaluation
    engine_summary: str

    @property
    def partitioning_gain(self) -> float:
        """P_all advantage of private caches over the shared cache."""
        return self.private.overall - self.shared.overall

    def render(self) -> str:
        def rows_for(evaluation: MulticoreEvaluation) -> list[list[str]]:
            rows = []
            for core_index, core in enumerate(evaluation.cores):
                names = ", ".join(self.app_names[i] for i in core.app_indices)
                rows.append(
                    [
                        str(core_index),
                        names,
                        "full" if core.ways is None else str(core.ways),
                        str(core.schedule),
                        ", ".join(
                            f"{evaluation.settling[i] * 1e3:.2f}"
                            for i in core.app_indices
                        ),
                    ]
                )
            return rows

        cache = self.platform.cache
        header = ["core", "apps", "ways", "schedule", "settling (ms)"]
        private_table = render_table(
            header,
            rows_for(self.private),
            title=f"private caches ({cache.n_sets} x {cache.associativity} ways each)",
        )
        shared_table = render_table(
            header,
            rows_for(self.shared),
            title=f"shared cache ({cache.associativity} ways partitioned)",
        )
        return (
            private_table
            + f"\nprivate P_all = {self.private.overall:.4f}"
            + "\n\n"
            + shared_table
            + f"\nshared  P_all = {self.shared.overall:.4f}"
            + f"\n\nprivate-vs-shared partitioning gain: "
            f"{self.partitioning_gain:+.4f}"
            + f"\nengine: {self.engine_summary}"
        )


def run(
    case: CaseStudy | None = None,
    design_options: DesignOptions | None = None,
    n_cores: int = 2,
    platform: Platform | None = None,
    max_count_per_core: int = 6,
    workers: int = 0,
    cache_dir: str | Path | None = None,
) -> SharedCacheSummary:
    """Run the private-vs-shared comparison on one platform.

    Both sweeps run through the partitioned engine; with a
    ``cache_dir`` they share disk entries wherever a block's way
    allocation equals the full geometry.
    """
    platform = platform or shared_paper_platform()
    case = case or build_case_study(platform=platform)
    options = design_options or design_options_for_profile()
    with MulticoreProblem(
        case.apps,
        case.clock,
        n_cores=n_cores,
        design_options=options,
        max_count_per_core=max_count_per_core,
        workers=workers,
        cache_dir=cache_dir,
        platform=platform,
    ) as problem:
        private = problem.optimize()
        private_summary = problem.engine.stats.summary()
    with MulticoreProblem(
        case.apps,
        case.clock,
        n_cores=n_cores,
        design_options=options,
        max_count_per_core=max_count_per_core,
        workers=workers,
        cache_dir=cache_dir,
        platform=platform,
        shared_cache=True,
    ) as problem:
        shared = problem.optimize()
        shared_summary = problem.engine.stats.summary()
    return SharedCacheSummary(
        n_cores=n_cores,
        app_names=[app.name for app in case.apps],
        platform=platform,
        private=private,
        shared=shared,
        engine_summary=f"private: {private_summary}; shared: {shared_summary}",
    )
