"""Structured control flow: sequences, bounded loops and branches.

The three node types form the AST of a statically analysable program.
Loop bounds are mandatory (as in any WCET-amenable code base); branches
carry no probabilities — the worst path is what matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from ..errors import ProgramError
from .blocks import BasicBlock

#: Any element of a program structure tree.
Node = Union[BasicBlock, "Seq", "Loop", "Branch"]


@dataclass
class Seq:
    """Sequential composition of child nodes."""

    children: list[Node]

    def __post_init__(self) -> None:
        if not self.children:
            raise ProgramError("Seq must have at least one child")


@dataclass
class Loop:
    """A loop executing ``body`` exactly up to ``iterations`` times.

    ``iterations`` is the loop *bound* used for WCET: the worst case
    executes the body that many times.
    """

    body: Node
    iterations: int

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ProgramError(
                f"loop bound must be >= 1, got {self.iterations}"
            )


@dataclass
class Branch:
    """A two-way branch; the WCET analysis considers both arms.

    Either arm may be ``None`` to model an if-without-else.  At least one
    arm must be present.
    """

    taken: Node | None
    not_taken: Node | None = None

    def __post_init__(self) -> None:
        if self.taken is None and self.not_taken is None:
            raise ProgramError("Branch must have at least one arm")

    def arms(self) -> list[Node | None]:
        """Both arms in a fixed order (``None`` marks an empty arm)."""
        return [self.taken, self.not_taken]


def iter_blocks(node: Node | None) -> Iterator[BasicBlock]:
    """Yield every basic block in ``node`` in layout (declaration) order.

    Blocks inside loops appear once — layout order is static program
    order, not execution order.
    """
    if node is None:
        return
    if isinstance(node, BasicBlock):
        yield node
    elif isinstance(node, Seq):
        for child in node.children:
            yield from iter_blocks(child)
    elif isinstance(node, Loop):
        yield from iter_blocks(node.body)
    elif isinstance(node, Branch):
        yield from iter_blocks(node.taken)
        yield from iter_blocks(node.not_taken)
    else:  # pragma: no cover - defensive
        raise ProgramError(f"unknown node type: {type(node).__name__}")


def count_branches(node: Node | None) -> int:
    """Number of :class:`Branch` nodes in the tree (for path enumeration)."""
    if node is None or isinstance(node, BasicBlock):
        return 0
    if isinstance(node, Seq):
        return sum(count_branches(child) for child in node.children)
    if isinstance(node, Loop):
        return count_branches(node.body)
    if isinstance(node, Branch):
        return 1 + count_branches(node.taken) + count_branches(node.not_taken)
    raise ProgramError(f"unknown node type: {type(node).__name__}")


def max_path_instructions(node: Node | None) -> int:
    """Upper bound on executed instructions along any path."""
    if node is None:
        return 0
    if isinstance(node, BasicBlock):
        return node.n_instr
    if isinstance(node, Seq):
        return sum(max_path_instructions(child) for child in node.children)
    if isinstance(node, Loop):
        return node.iterations * max_path_instructions(node.body)
    if isinstance(node, Branch):
        return max(
            max_path_instructions(node.taken),
            max_path_instructions(node.not_taken),
        )
    raise ProgramError(f"unknown node type: {type(node).__name__}")
