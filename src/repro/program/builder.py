"""Fluent builder for structured programs.

Keeps test and example code readable::

    program = (
        ProgramBuilder("filter")
        .block("init", 40)
        .loop(16, lambda body: body.block("tap", 12))
        .branch(
            lambda arm: arm.block("saturate", 8),
            lambda arm: arm.block("pass", 2),
        )
        .block("write_back", 6)
        .build()
    )
"""

from __future__ import annotations

from typing import Callable

from ..errors import ProgramError
from .blocks import BasicBlock
from .program import Program
from .structure import Branch, Loop, Node, Seq


class ProgramBuilder:
    """Accumulates nodes and produces a :class:`Program`."""

    def __init__(self, name: str, instr_size: int = 4) -> None:
        self.name = name
        self.instr_size = instr_size
        self._children: list[Node] = []
        self._auto_index = 0

    def _fresh_name(self, prefix: str) -> str:
        self._auto_index += 1
        return f"{prefix}_{self._auto_index}"

    def block(self, name: str, n_instr: int) -> "ProgramBuilder":
        """Append a basic block."""
        self._children.append(BasicBlock(name, n_instr))
        return self

    def loop(
        self,
        iterations: int,
        body: "Callable[[ProgramBuilder], ProgramBuilder]",
    ) -> "ProgramBuilder":
        """Append a loop whose body is built by ``body``."""
        inner = ProgramBuilder(self._fresh_name(f"{self.name}.loop"), self.instr_size)
        inner._auto_index = self._auto_index * 1000
        body(inner)
        self._children.append(Loop(inner._as_node(), iterations))
        return self

    def branch(
        self,
        taken: "Callable[[ProgramBuilder], ProgramBuilder] | None",
        not_taken: "Callable[[ProgramBuilder], ProgramBuilder] | None" = None,
    ) -> "ProgramBuilder":
        """Append a branch; either arm callback may be ``None``."""

        def build_arm(
            arm: "Callable[[ProgramBuilder], ProgramBuilder] | None", tag: str
        ) -> Node | None:
            if arm is None:
                return None
            inner = ProgramBuilder(self._fresh_name(f"{self.name}.{tag}"), self.instr_size)
            inner._auto_index = self._auto_index * 1000 + (7 if tag == "t" else 13)
            arm(inner)
            return inner._as_node()

        self._children.append(Branch(build_arm(taken, "t"), build_arm(not_taken, "nt")))
        return self

    def _as_node(self) -> Node:
        if not self._children:
            raise ProgramError(f"builder {self.name!r} is empty")
        if len(self._children) == 1:
            return self._children[0]
        return Seq(list(self._children))

    def build(self, base: int | None = None) -> Program:
        """Produce the program; optionally place it at ``base``."""
        program = Program(self.name, self._as_node(), self.instr_size)
        if base is not None:
            program.place(base)
        return program
