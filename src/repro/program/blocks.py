"""Basic blocks: straight-line runs of instructions."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ProgramError


@dataclass
class BasicBlock:
    """A straight-line sequence of ``n_instr`` fixed-size instructions.

    The block's flash address is assigned when the enclosing
    :class:`~repro.program.program.Program` is placed; until then the
    block is "unplaced" and produces no addresses.

    Parameters
    ----------
    name:
        Unique (per program) human-readable identifier.
    n_instr:
        Number of instructions in the block; must be positive.
    """

    name: str
    n_instr: int
    _base: int | None = field(default=None, repr=False, compare=False)
    _instr_size: int | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.n_instr <= 0:
            raise ProgramError(
                f"block {self.name!r} must contain at least one instruction, "
                f"got {self.n_instr}"
            )

    @property
    def placed(self) -> bool:
        """Whether the block has been assigned a flash address."""
        return self._base is not None

    @property
    def base(self) -> int:
        """First instruction's byte address (requires placement)."""
        if self._base is None or self._instr_size is None:
            raise ProgramError(f"block {self.name!r} has not been placed yet")
        return self._base

    @property
    def size_bytes(self) -> int:
        """Byte size of the block (requires placement for instr size)."""
        if self._instr_size is None:
            raise ProgramError(f"block {self.name!r} has not been placed yet")
        return self.n_instr * self._instr_size

    @property
    def end(self) -> int:
        """First byte address after the block."""
        return self.base + self.size_bytes

    def place(self, base: int, instr_size: int) -> None:
        """Assign the block's flash address and instruction size."""
        if base < 0 or instr_size <= 0:
            raise ProgramError(
                f"invalid placement for block {self.name!r}: "
                f"base={base} instr_size={instr_size}"
            )
        self._base = base
        self._instr_size = instr_size

    def addresses(self) -> list[int]:
        """Byte addresses of every instruction, in execution order."""
        base = self.base
        step = self._instr_size
        assert step is not None
        return [base + k * step for k in range(self.n_instr)]
