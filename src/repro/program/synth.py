"""Synthetic program generation.

Two generators live here:

* :func:`make_control_program` — the canonical *init / main-loop / exit*
  shape of a sampled-data control task (sensor read and scaling, the
  filter/solver loop, actuator write-back).  The case-study programs of
  :mod:`repro.apps.programs` are instances calibrated to Table I.
* :func:`random_program` — random structure trees for property-based
  tests of the cache and WCET analyses.
"""

from __future__ import annotations

import numpy as np

from ..errors import ProgramError
from .blocks import BasicBlock
from .program import Program
from .structure import Branch, Loop, Node, Seq


def make_control_program(
    name: str,
    init_instr: int,
    body_instr: int,
    iterations: int,
    exit_instr: int,
    instr_size: int = 4,
) -> Program:
    """Build the canonical control-task program.

    Structure: ``init`` (sensor acquisition, state load), a main loop of
    ``iterations`` executions of ``body`` (the numeric kernel), then
    ``exit`` (actuator write, state store).

    The executed-instruction count is
    ``init_instr + iterations * body_instr + exit_instr`` and the static
    image is ``init_instr + body_instr + exit_instr`` instructions.
    """
    root = Seq(
        [
            BasicBlock(f"{name}.init", init_instr),
            Loop(BasicBlock(f"{name}.body", body_instr), iterations),
            BasicBlock(f"{name}.exit", exit_instr),
        ]
    )
    return Program(name, root, instr_size)


def random_program(
    rng: np.random.Generator,
    max_depth: int = 3,
    max_children: int = 3,
    max_block_instr: int = 24,
    max_loop_iterations: int = 6,
    instr_size: int = 4,
    name: str = "random",
) -> Program:
    """Generate a random structured program for property-based testing.

    The tree is kept small (worst path a few thousand instructions) so
    exhaustive path enumeration stays cheap in tests.
    """
    if max_depth < 1:
        raise ProgramError("max_depth must be >= 1")
    counter = [0]

    def fresh_block() -> BasicBlock:
        counter[0] += 1
        n_instr = int(rng.integers(1, max_block_instr + 1))
        return BasicBlock(f"{name}.b{counter[0]}", n_instr)

    def gen(depth: int) -> Node:
        if depth >= max_depth:
            return fresh_block()
        kind = rng.choice(["block", "seq", "loop", "branch"])
        if kind == "block":
            return fresh_block()
        if kind == "seq":
            n_children = int(rng.integers(1, max_children + 1))
            return Seq([gen(depth + 1) for _ in range(n_children)])
        if kind == "loop":
            iterations = int(rng.integers(1, max_loop_iterations + 1))
            return Loop(gen(depth + 1), iterations)
        arm_shape = rng.integers(0, 3)
        if arm_shape == 0:
            return Branch(gen(depth + 1), gen(depth + 1))
        if arm_shape == 1:
            return Branch(gen(depth + 1), None)
        return Branch(None, gen(depth + 1))

    root = Seq([fresh_block(), gen(1), fresh_block()])
    return Program(name, root, instr_size)
