"""Program model used by the WCET analysis.

Control programs are modelled as *structured* instruction streams: a tree
of sequences, fixed-bound loops and two-way branches whose leaves are
basic blocks.  This mirrors the shape of generated automotive control
code (MISRA-style: no recursion, statically bounded loops) and is exactly
the class of programs the paper's WCET references handle.

The model provides two complementary views:

* a **layout** view — blocks placed contiguously in flash, which fixes the
  cache-line/set mapping;
* an **execution** view — concrete instruction-address traces (for the
  exact cache simulator) and a structure walk (for the abstract must/may
  analysis).
"""

from .blocks import BasicBlock
from .structure import Branch, Loop, Node, Seq
from .program import Program
from .builder import ProgramBuilder
from .synth import make_control_program, random_program

__all__ = [
    "BasicBlock",
    "Branch",
    "Loop",
    "Node",
    "Program",
    "ProgramBuilder",
    "Seq",
    "make_control_program",
    "random_program",
]
