"""The :class:`Program` container: structure + flash placement."""

from __future__ import annotations

from typing import Callable, Iterator

from ..cache.config import CacheConfig
from ..errors import ProgramError
from .blocks import BasicBlock
from .structure import Branch, Loop, Node, Seq, count_branches, iter_blocks

#: Decides branch directions during trace expansion.  Receives the branch
#: node and the number of branches decided so far; returns ``True`` for
#: the taken arm.
BranchDecider = Callable[[Branch, int], bool]


def take_always(branch: Branch, index: int) -> bool:
    """Branch decider that always follows the taken arm (if present)."""
    return branch.taken is not None


class Program:
    """A complete, placeable control program.

    Parameters
    ----------
    name:
        Program identifier (also used as the flash region name).
    root:
        Structure tree of the program.
    instr_size:
        Instruction width in bytes.  The case study uses 4-byte
        instructions, i.e. 4 instructions per 16-byte cache line.
    """

    def __init__(self, name: str, root: Node, instr_size: int = 4) -> None:
        if instr_size <= 0:
            raise ProgramError(f"instr_size must be positive, got {instr_size}")
        self.name = name
        self.root = root
        self.instr_size = instr_size
        self._placed = False
        self._check_unique_block_names()

    def _check_unique_block_names(self) -> None:
        seen: set[str] = set()
        for block in iter_blocks(self.root):
            if block.name in seen:
                raise ProgramError(
                    f"duplicate block name {block.name!r} in program {self.name!r}"
                )
            seen.add(block.name)

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def place(self, base: int) -> None:
        """Place all blocks contiguously in flash starting at ``base``."""
        address = base
        for block in iter_blocks(self.root):
            block.place(address, self.instr_size)
            address += block.n_instr * self.instr_size
        self._placed = True

    @property
    def placed(self) -> bool:
        """Whether :meth:`place` has been called."""
        return self._placed

    def _require_placed(self) -> None:
        if not self._placed:
            raise ProgramError(f"program {self.name!r} has not been placed")

    @property
    def blocks(self) -> list[BasicBlock]:
        """All basic blocks in layout order."""
        return list(iter_blocks(self.root))

    @property
    def static_instructions(self) -> int:
        """Total instructions in the image (static count, not executed)."""
        return sum(block.n_instr for block in self.blocks)

    @property
    def size_bytes(self) -> int:
        """Byte size of the program image."""
        return self.static_instructions * self.instr_size

    @property
    def base(self) -> int:
        """Flash base address of the image."""
        self._require_placed()
        return self.blocks[0].base

    def footprint_lines(self, config: CacheConfig) -> set[int]:
        """Memory lines the image occupies under ``config``."""
        self._require_placed()
        lines: set[int] = set()
        for block in self.blocks:
            first = config.line_of(block.base)
            last = config.line_of(block.end - 1)
            lines.update(range(first, last + 1))
        return lines

    def cache_sets(self, config: CacheConfig) -> set[int]:
        """Cache sets the image maps to under ``config``."""
        return {config.set_of_line(line) for line in self.footprint_lines(config)}

    @property
    def n_branches(self) -> int:
        """Number of branch nodes (drives path enumeration cost)."""
        return count_branches(self.root)

    # ------------------------------------------------------------------
    # Execution view
    # ------------------------------------------------------------------
    def trace(self, decider: BranchDecider = take_always) -> Iterator[int]:
        """Yield instruction byte addresses along one concrete path.

        ``decider`` fixes each branch direction; loops run their full
        bound (the worst case for a fixed-bound loop).
        """
        self._require_placed()
        counter = [0]

        def walk(node: Node | None) -> Iterator[int]:
            if node is None:
                return
            if isinstance(node, BasicBlock):
                yield from node.addresses()
            elif isinstance(node, Seq):
                for child in node.children:
                    yield from walk(child)
            elif isinstance(node, Loop):
                for _ in range(node.iterations):
                    yield from walk(node.body)
            elif isinstance(node, Branch):
                index = counter[0]
                counter[0] += 1
                if decider(node, index):
                    yield from walk(node.taken)
                else:
                    yield from walk(node.not_taken)
            else:  # pragma: no cover - defensive
                raise ProgramError(f"unknown node type: {type(node).__name__}")

        yield from walk(self.root)

    def executed_instructions(self, decider: BranchDecider = take_always) -> int:
        """Number of instructions executed along one concrete path."""
        return sum(1 for _ in self.trace(decider))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Program({self.name!r}, blocks={len(self.blocks)}, "
            f"static_instr={self.static_instructions})"
        )
