"""Structured, persisted run reports.

A :class:`RunReport` is the JSON-serializable artifact of one scenario
run: which problem (scenario + stable problem digest), which strategy
with which options and seed, how the engine behaved (stats, backend),
and what came out (best schedule — per-core assignments for multicore
runs — per-application settling/performance, overall value, wall
time).  Reports round-trip losslessly through
:meth:`RunReport.to_json` / :meth:`RunReport.from_json`, so a sweep
persisted under a run directory is resumable and comparable across
commits.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field

from ..control.design import DesignOptions
from ..platform import default_platform
from ..sched.engine.keys import problem_digest
from ..sched.strategies import options_as_dict

#: Bump when the report layout changes incompatibly.
#: v2: reports record the platform (cache geometry, clock, WCET model)
#: and the shared-cache flag; multicore cores carry their way allocation.
#: (Still v2: the allocator fields below are additive with defaults, so
#: v2 artifacts written before them round-trip unchanged.)
SCHEMA_VERSION = 2


def scenario_digest(scenario) -> str:
    """Stable digest of a scenario's evaluation problem.

    Identical to the engine's persistent-cache problem digest, so two
    reports are comparable exactly when their evaluations would share
    cache entries.
    """
    return problem_digest(
        scenario.apps,
        scenario.clock,
        scenario.design_options or DesignOptions(),
        getattr(scenario, "platform", None),
    )


def scenario_platform_fingerprint(scenario) -> dict:
    """JSON-safe platform record of one scenario (``None`` = paper
    platform at the scenario's clock, matching the engine keys)."""
    platform = getattr(scenario, "platform", None) or default_platform(
        scenario.clock
    )
    return platform.fingerprint()


def _json_safe(value):
    """Recursively keep only JSON-representable content."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        kept = [_json_safe(item) for item in value]
        return [item for item in kept if item is not _DROP]
    if isinstance(value, dict):
        result = {}
        for key, item in value.items():
            safe = _json_safe(item)
            if safe is not _DROP:
                result[str(key)] = safe
        return result
    return _DROP


_DROP = object()


@dataclass
class RunReport:
    """Structured outcome of one scenario run (JSON round-trippable)."""

    scenario: str
    strategy: str
    options: dict
    seed: int
    n_starts: int
    starts: list[list[int]] | None
    n_cores: int
    max_count_per_core: int
    platform: dict
    shared_cache: bool
    n_apps: int
    problem: str
    n_space: int
    backend: str
    engine_stats: dict
    best_schedule: list[int] | None
    cores: list[dict] | None
    overall: float
    feasible: bool
    apps: list[dict]
    wall_time: float
    created_at: float
    search_stats: dict = field(default_factory=dict)
    allocator: str | None = None
    allocator_options: dict = field(default_factory=dict)
    #: The dynamic profile of a feedback-scheduling scenario
    #: (:meth:`DynamicProfile.to_dict
    #: <repro.sim.profiles.DynamicProfile.to_dict>`) and its simulation
    #: outcome (:meth:`SimReport.to_dict
    #: <repro.sim.report.SimReport.to_dict>`); ``None`` for static
    #: runs.  Additive with defaults, so pre-simulation v2 artifacts
    #: round-trip unchanged.
    dynamic: dict | None = None
    sim: dict | None = None
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_outcome(cls, scenario, outcome) -> "RunReport":
        """Build the report of one executed scenario.

        ``scenario`` is the :class:`~repro.sched.engine.batch.Scenario`
        that ran, ``outcome`` the
        :class:`~repro.sched.engine.batch.ScenarioOutcome` it produced.
        """
        if outcome.multicore is not None:
            evaluation = outcome.multicore
            best_schedule = None
            cores = [
                {
                    "app_indices": list(core.app_indices),
                    "apps": [scenario.apps[i].name for i in core.app_indices],
                    "schedule": list(core.schedule.counts),
                    "ways": core.ways,
                }
                for core in evaluation.cores
            ]
            apps = [
                {
                    "name": scenario.apps[index].name,
                    "settling": evaluation.settling[index],
                    "performance": evaluation.performances[index],
                }
                for index in sorted(evaluation.settling)
            ]
            feasible = evaluation.feasible
            search_stats: dict = {
                "allocator": getattr(scenario, "allocator", None),
                "n_partitions": int(getattr(evaluation, "n_partitions", 0)),
            }
        else:
            best = outcome.result.best
            best_schedule = list(best.schedule.counts)
            cores = None
            apps = [
                {
                    "name": app.app_name,
                    "settling": app.settling,
                    "performance": app.performance,
                }
                for app in best.apps
            ]
            feasible = best.feasible
            search_stats = _json_safe(outcome.result.stats)
        return cls(
            scenario=scenario.name,
            strategy=outcome.strategy,
            options=_json_safe(options_as_dict(scenario.options)),
            seed=scenario.seed,
            n_starts=scenario.n_starts,
            starts=(
                [list(s.counts) for s in scenario.starts]
                if scenario.starts
                else None
            ),
            n_cores=scenario.n_cores,
            max_count_per_core=scenario.max_count_per_core,
            platform=scenario_platform_fingerprint(scenario),
            shared_cache=bool(getattr(scenario, "shared_cache", False)),
            n_apps=outcome.n_apps,
            problem=scenario_digest(scenario),
            n_space=outcome.n_space,
            backend=outcome.backend,
            engine_stats=_json_safe(outcome.engine_stats),
            best_schedule=best_schedule,
            cores=cores,
            overall=float(outcome.best_overall),
            feasible=bool(feasible),
            apps=apps,
            wall_time=float(outcome.wall_time),
            created_at=time.time(),
            search_stats=search_stats,
            allocator=getattr(scenario, "allocator", None),
            allocator_options=_json_safe(
                options_as_dict(getattr(scenario, "allocator_options", None))
            ),
            dynamic=(
                scenario.dynamic.to_dict()
                if getattr(scenario, "dynamic", None) is not None
                else None
            ),
            sim=(
                outcome.sim.to_dict()
                if getattr(outcome, "sim", None) is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # Round-tripping
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        return cls(
            scenario=str(data["scenario"]),
            strategy=str(data["strategy"]),
            options=dict(data["options"]),
            seed=int(data["seed"]),
            n_starts=int(data["n_starts"]),
            starts=(
                [[int(m) for m in counts] for counts in data["starts"]]
                if data["starts"] is not None
                else None
            ),
            n_cores=int(data["n_cores"]),
            max_count_per_core=int(data["max_count_per_core"]),
            platform=dict(data.get("platform", {})),
            shared_cache=bool(data.get("shared_cache", False)),
            n_apps=int(data["n_apps"]),
            problem=str(data["problem"]),
            n_space=int(data["n_space"]),
            backend=str(data["backend"]),
            engine_stats=dict(data["engine_stats"]),
            best_schedule=(
                [int(m) for m in data["best_schedule"]]
                if data["best_schedule"] is not None
                else None
            ),
            cores=(
                [dict(core) for core in data["cores"]]
                if data["cores"] is not None
                else None
            ),
            overall=float(data["overall"]),
            feasible=bool(data["feasible"]),
            apps=[dict(app) for app in data["apps"]],
            wall_time=float(data["wall_time"]),
            created_at=float(data["created_at"]),
            search_stats=dict(data.get("search_stats", {})),
            allocator=(
                str(data["allocator"])
                if data.get("allocator") is not None
                else None
            ),
            allocator_options=dict(data.get("allocator_options", {})),
            dynamic=(
                dict(data["dynamic"])
                if data.get("dynamic") is not None
                else None
            ),
            sim=dict(data["sim"]) if data.get("sim") is not None else None,
            schema_version=int(data.get("schema_version", SCHEMA_VERSION)),
        )

    def to_json(self, indent: int | None = 2) -> str:
        """Stable JSON form (sorted keys; ``Infinity`` allowed for the
        non-finite settling of infeasible designs)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        """Inverse of :meth:`to_json` (identity round-trip)."""
        return cls.from_dict(json.loads(text))
