"""Typed study-level progress events.

:meth:`Study.run(on_event=...) <repro.study.Study.run>` and the
:meth:`Study.stream() <repro.study.Study.stream>` iterator deliver one
stream of these events per study:

* :class:`ScenarioStarted` before each scenario runs;
* :class:`ScenarioProgress` for every engine event the scenario's
  search emits (a scenario-tagged wrapper around the engine's
  :class:`~repro.sched.engine.events.BatchSubmitted` /
  :class:`~repro.sched.engine.events.BatchCompleted`, so the
  memo/disk/computed counters are exactly the engine's
  :class:`~repro.sched.engine.EngineStats` snapshot);
* :class:`ScenarioResumed` when a persisted
  :class:`~repro.study.RunReport` answered the scenario from disk
  (no search ran);
* :class:`SimulationProgress` for every runtime
  :class:`~repro.sim.events.SimEvent` a dynamic scenario's
  feedback-scheduling simulation processes;
* :class:`SimulationFinished` once such a simulation's
  :class:`~repro.sim.report.SimReport` exists;
* :class:`ScenarioFinished` once a scenario's report exists, carrying
  the report and the study's *running throughput* (cumulative computed
  evaluations per cumulative search second).

All events are frozen dataclasses; callbacks run synchronously on the
coordinating thread, and a raising callback aborts the run (observers
must never corrupt a sweep silently).

Every event also has a typed JSON encoding —
:meth:`StudyEvent.to_dict` / :meth:`StudyEvent.from_dict` (and the
``to_json`` / ``from_json`` string forms) round-trip losslessly, with
the concrete event class tagged under ``"event"``, nested engine
events encoded through :meth:`EngineEvent.to_dict
<repro.sched.engine.events.EngineEvent.to_dict>` and reports through
:meth:`RunReport.to_dict <repro.study.report.RunReport.to_dict>`.
This is the wire format :mod:`repro.serve.wire` streams over HTTP.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any

from ..errors import ConfigurationError
from ..sched.engine.events import EngineEvent
from ..sim.events import SimEvent
from ..sim.report import SimReport
from .report import RunReport

#: Concrete event classes by name (``to_dict``'s ``"event"`` tag);
#: populated automatically as subclasses are defined.
STUDY_EVENT_TYPES: dict[str, type["StudyEvent"]] = {}


@dataclass(frozen=True)
class StudyEvent:
    """Base class of all study progress events.

    ``index`` is the scenario's position in the study (0-based),
    ``n_scenarios`` the study size, ``scenario`` the scenario name.
    """

    index: int
    n_scenarios: int
    scenario: str

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        STUDY_EVENT_TYPES[cls.__name__] = cls

    # ------------------------------------------------------------------
    # JSON round-tripping (the serve wire format builds on this)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe form, tagged with the concrete event class."""
        data: dict = {"event": type(self).__name__}
        data.update(self._payload())
        return data

    def _payload(self) -> dict:
        """The event's fields as JSON-safe values (subclass hook)."""
        return asdict(self)

    def to_json(self) -> str:
        """Stable JSON form (inverse of :meth:`from_json`)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "StudyEvent":
        """Rebuild the concrete event ``to_dict`` encoded.

        Unknown or malformed payloads raise
        :class:`~repro.errors.ConfigurationError` naming the known
        event classes — wire decoding fails fast, like the registries.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"study event payload must be an object, got {type(data).__name__}"
            )
        payload = dict(data)
        name = payload.pop("event", None)
        event_type = STUDY_EVENT_TYPES.get(name) if isinstance(name, str) else None
        if event_type is None:
            raise ConfigurationError(
                f"unknown study event {name!r}; known events: "
                f"{', '.join(sorted(STUDY_EVENT_TYPES))}"
            )
        try:
            return event_type._from_payload(payload)
        except (TypeError, KeyError, ValueError) as exc:
            raise ConfigurationError(f"invalid {name} payload: {exc}") from exc

    @classmethod
    def _from_payload(cls, payload: dict) -> "StudyEvent":
        """Construct from a decoded payload (subclass hook)."""
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "StudyEvent":
        """Inverse of :meth:`to_json` (identity round-trip)."""
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class ScenarioStarted(StudyEvent):
    """A scenario is about to run (or be resumed from disk)."""

    strategy: str
    n_cores: int


@dataclass(frozen=True)
class ScenarioProgress(StudyEvent):
    """One engine progress event, tagged with its scenario."""

    engine: EngineEvent

    def _payload(self) -> dict:
        data = asdict(self)
        # asdict would flatten the engine event into an untagged dict;
        # its own encoding keeps the concrete class name.
        data["engine"] = self.engine.to_dict()
        return data

    @classmethod
    def _from_payload(cls, payload: dict) -> "ScenarioProgress":
        payload = dict(payload)
        payload["engine"] = EngineEvent.from_dict(payload["engine"])
        return cls(**payload)


@dataclass(frozen=True)
class ScenarioResumed(StudyEvent):
    """The scenario was answered by a persisted report (no search)."""

    report: RunReport

    @classmethod
    def _from_payload(cls, payload: dict) -> "ScenarioResumed":
        payload = dict(payload)
        payload["report"] = RunReport.from_dict(payload["report"])
        return cls(**payload)


@dataclass(frozen=True)
class SimulationProgress(StudyEvent):
    """One runtime simulation event, tagged with its scenario.

    Emitted while a dynamic scenario's feedback-scheduling simulation
    runs (:class:`~repro.sim.loop.FeedbackLoop` processing its
    timeline); ``sim`` is the processed
    :class:`~repro.sim.events.SimEvent`.
    """

    sim: SimEvent

    def _payload(self) -> dict:
        data = asdict(self)
        # asdict would flatten the sim event into an untagged dict; its
        # own encoding keeps the concrete class name.
        data["sim"] = self.sim.to_dict()
        return data

    @classmethod
    def _from_payload(cls, payload: dict) -> "SimulationProgress":
        payload = dict(payload)
        payload["sim"] = SimEvent.from_dict(payload["sim"])
        return cls(**payload)


@dataclass(frozen=True)
class SimulationFinished(StudyEvent):
    """A dynamic scenario's feedback-scheduling simulation completed.

    Carries the full :class:`~repro.sim.report.SimReport` plus the two
    headline numbers (time-averaged cost and adaptation count) so wire
    consumers can render a summary without decoding the report.
    """

    report: SimReport
    mean_cost: float
    n_adaptations: int

    def _payload(self) -> dict:
        data = asdict(self)
        data["report"] = self.report.to_dict()
        return data

    @classmethod
    def _from_payload(cls, payload: dict) -> "SimulationFinished":
        payload = dict(payload)
        payload["report"] = SimReport.from_dict(payload["report"])
        return cls(**payload)


@dataclass(frozen=True)
class ScenarioFinished(StudyEvent):
    """A scenario's report exists (freshly computed).

    ``throughput`` is the study's running rate — cumulative computed
    evaluations divided by cumulative search wall time, in evaluations
    per second (``None`` until any wall time accumulates).
    """

    report: RunReport
    wall_time: float
    n_computed_total: int
    throughput: float | None

    @classmethod
    def _from_payload(cls, payload: dict) -> "ScenarioFinished":
        payload = dict(payload)
        payload["report"] = RunReport.from_dict(payload["report"])
        return cls(**payload)
