"""Typed study-level progress events.

:meth:`Study.run(on_event=...) <repro.study.Study.run>` and the
:meth:`Study.stream() <repro.study.Study.stream>` iterator deliver one
stream of these events per study:

* :class:`ScenarioStarted` before each scenario runs;
* :class:`ScenarioProgress` for every engine event the scenario's
  search emits (a scenario-tagged wrapper around the engine's
  :class:`~repro.sched.engine.events.BatchSubmitted` /
  :class:`~repro.sched.engine.events.BatchCompleted`, so the
  memo/disk/computed counters are exactly the engine's
  :class:`~repro.sched.engine.EngineStats` snapshot);
* :class:`ScenarioResumed` when a persisted
  :class:`~repro.study.RunReport` answered the scenario from disk
  (no search ran);
* :class:`ScenarioFinished` once a scenario's report exists, carrying
  the report and the study's *running throughput* (cumulative computed
  evaluations per cumulative search second).

All events are frozen dataclasses; callbacks run synchronously on the
coordinating thread, and a raising callback aborts the run (observers
must never corrupt a sweep silently).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sched.engine.events import EngineEvent
from .report import RunReport


@dataclass(frozen=True)
class StudyEvent:
    """Base class of all study progress events.

    ``index`` is the scenario's position in the study (0-based),
    ``n_scenarios`` the study size, ``scenario`` the scenario name.
    """

    index: int
    n_scenarios: int
    scenario: str


@dataclass(frozen=True)
class ScenarioStarted(StudyEvent):
    """A scenario is about to run (or be resumed from disk)."""

    strategy: str
    n_cores: int


@dataclass(frozen=True)
class ScenarioProgress(StudyEvent):
    """One engine progress event, tagged with its scenario."""

    engine: EngineEvent


@dataclass(frozen=True)
class ScenarioResumed(StudyEvent):
    """The scenario was answered by a persisted report (no search)."""

    report: RunReport


@dataclass(frozen=True)
class ScenarioFinished(StudyEvent):
    """A scenario's report exists (freshly computed).

    ``throughput`` is the study's running rate — cumulative computed
    evaluations divided by cumulative search wall time, in evaluations
    per second (``None`` until any wall time accumulates).
    """

    report: RunReport
    wall_time: float
    n_computed_total: int
    throughput: float | None
