"""Live progress rendering for study and engine events.

One :class:`ProgressLine` consumes the typed events of
:mod:`repro.study.events` and :mod:`repro.sched.engine.events` and
keeps a single status line up to date — the CLI's ``repro batch`` /
``repro experiment`` feedback for long sweeps.

On a TTY the line is redrawn in place (``\\r``); on a plain stream
(CI logs, pipes) only the per-scenario completion lines are printed,
one per line, so logs stay readable.  Everything goes to the given
stream (``stderr`` by default) — never to stdout, which stays
reserved for tables and ``--json`` payloads.
"""

from __future__ import annotations

import sys

from ..sched.engine.events import BatchCompleted, EngineEvent
from .events import (
    ScenarioFinished,
    ScenarioProgress,
    ScenarioResumed,
    ScenarioStarted,
    StudyEvent,
)


class ProgressLine:
    """Render engine/study events as one live status line.

    Parameters
    ----------
    stream:
        Output stream (default ``sys.stderr``).
    live:
        Redraw one line in place.  ``None`` auto-detects
        ``stream.isatty()``; ``False`` prints completion lines only.
    """

    def __init__(self, stream=None, live: bool | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        if live is None:
            live = bool(getattr(self.stream, "isatty", lambda: False)())
        self.live = live
        self._dirty = False
        self._prefix = ""

    # ------------------------------------------------------------------
    # Event entry point (usable directly as Study.run(on_event=...))
    # ------------------------------------------------------------------
    def __call__(self, event) -> None:
        if isinstance(event, StudyEvent):
            self._handle_study(event)
        elif isinstance(event, EngineEvent):
            self._handle_engine(event)

    def _handle_study(self, event: StudyEvent) -> None:
        label = f"[{event.index + 1}/{event.n_scenarios}] {event.scenario}"
        if isinstance(event, ScenarioStarted):
            self._prefix = label
            self._draw(f"{label}: searching ({event.strategy})")
        elif isinstance(event, ScenarioProgress):
            engine = event.engine
            if isinstance(engine, BatchCompleted):
                self._draw(f"{label}: {self._engine_text(engine)}")
        elif isinstance(event, ScenarioResumed):
            self._println(f"{label}: resumed from {_short(event.report)}")
        elif isinstance(event, ScenarioFinished):
            rate = (
                f", {event.throughput:.1f} eval/s"
                if event.throughput is not None
                else ""
            )
            self._println(
                f"{label}: done in {event.wall_time:.2f} s "
                f"({_short(event.report)}{rate})"
            )

    def _handle_engine(self, event: EngineEvent) -> None:
        """Bare engine events (no Study in the loop, e.g. experiments).

        These are the only progress signal an experiment emits, so on
        a plain stream each completed batch gets its own line (there
        is no per-scenario completion event to fall back to).
        """
        if isinstance(event, BatchCompleted):
            prefix = f"{self._prefix}: " if self._prefix else ""
            text = f"{prefix}{self._engine_text(event)}"
            if self.live:
                self._draw(text)
            else:
                self._println(text)

    def set_prefix(self, prefix: str) -> None:
        """Label bare engine events (e.g. with the experiment name)."""
        self._prefix = prefix

    @staticmethod
    def _engine_text(event: BatchCompleted) -> str:
        best = (
            f", best {event.best_overall:.4f}"
            if event.best_overall is not None
            else ""
        )
        return (
            f"{event.n_computed} computed + {event.n_memo_hits} memo + "
            f"{event.n_disk_hits} disk ({event.n_requested} requested{best})"
        )

    # ------------------------------------------------------------------
    # Drawing
    # ------------------------------------------------------------------
    def _draw(self, text: str) -> None:
        """Update the in-place line (no-op when not live)."""
        if not self.live:
            return
        self.stream.write("\r\x1b[2K" + text)
        self.stream.flush()
        self._dirty = True

    def _println(self, text: str) -> None:
        """Emit one permanent line (always, live or not)."""
        if self._dirty:
            self.stream.write("\r\x1b[2K")
            self._dirty = False
        self.stream.write(text + "\n")
        self.stream.flush()

    def close(self) -> None:
        """Clear a leftover in-place line (call when the run ends)."""
        if self._dirty:
            self.stream.write("\r\x1b[2K")
            self.stream.flush()
            self._dirty = False


def _short(report) -> str:
    stats = report.engine_stats
    return (
        f"{stats.get('n_computed', 0)} computed, "
        f"{stats.get('n_disk_hits', 0)} disk"
    )
