"""The unified `Study` facade.

A :class:`Study` is a list of scenarios plus one engine configuration
and an optional run directory.  It is the single front door to the
search machinery: the paper case study, a synthesized workload suite
and explicit scenario lists all run through exactly one code path
(:func:`repro.sched.engine.batch.run_scenario` → strategy registry →
engine), whether the scenarios are single-core searches, batch sweeps
or multicore co-designs.  Every run produces a
:class:`~repro.study.report.RunReport`; with a ``run_dir`` the reports
persist as JSON and matching reruns are served from disk (resumable
sweeps, comparable across commits).

Runs are observable while they execute: :meth:`Study.run` accepts an
``on_event`` callback and :meth:`Study.stream` is a generator, both
delivering the typed :mod:`~repro.study.events` — scenario
started/resumed/finished plus the engines' batch-level progress — so a
long sweep reports live throughput instead of going silent until the
final report list.
"""

from __future__ import annotations

import hashlib
import json
import re
import time
from pathlib import Path
from typing import Iterator

from ..control.design import DesignOptions
from ..platform import Platform
from ..sched.engine import EngineOptions
from ..sched.engine.batch import Scenario, run_scenario, synthesize_scenarios
from ..sched.schedule import PeriodicSchedule
from ..sched.strategies import options_as_dict
from ..sim.report import SimReport
from .events import (
    ScenarioFinished,
    ScenarioProgress,
    ScenarioResumed,
    ScenarioStarted,
    SimulationFinished,
    SimulationProgress,
    StudyEvent,
)
from .report import (
    RunReport,
    _json_safe,
    scenario_digest,
    scenario_platform_fingerprint,
)


def _slug(text: str) -> str:
    """Filesystem-safe fragment of a scenario/strategy name."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", text)


class Study:
    """A suite of scenarios behind one engine configuration.

    Parameters
    ----------
    scenarios:
        The :class:`~repro.sched.engine.batch.Scenario` list to run.
    engine_options:
        Worker-pool / persistent-cache configuration shared by every
        scenario (each scenario still gets its own engine instance).
    run_dir:
        Directory the per-scenario :class:`RunReport` JSON artifacts
        persist under; ``None`` keeps reports in memory only.
    """

    def __init__(
        self,
        scenarios: list[Scenario],
        engine_options: EngineOptions | None = None,
        run_dir: str | Path | None = None,
    ) -> None:
        self.scenarios = list(scenarios)
        self.engine_options = engine_options or EngineOptions()
        self.run_dir = Path(run_dir) if run_dir is not None else None

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def from_case_study(
        cls,
        design_options: DesignOptions | None = None,
        strategy: str | None = None,
        starts: list[PeriodicSchedule] | None = None,
        n_starts: int = 2,
        seed: int = 2018,
        n_cores: int = 1,
        options: object | None = None,
        max_count_per_core: int = 6,
        platform: Platform | None = None,
        shared_cache: bool = False,
        allocator: str | None = None,
        allocator_options: object | None = None,
        n_apps: int | None = None,
        dynamic: object | None = None,
        engine_options: EngineOptions | None = None,
        run_dir: str | Path | None = None,
        name: str = "casestudy",
    ) -> "Study":
        """One-scenario study over the paper's automotive case study.

        ``n_cores > 1`` makes it a multicore co-design of the case
        study (the CLI's ``multicore`` command); otherwise it is the
        single-core search (the CLI's ``search`` command).

        ``platform`` rebuilds the case study on a different execution
        platform (cache geometry, clock, WCET model); the WCETs are
        re-analyzed under it.  ``shared_cache=True`` makes the
        multicore co-design way-partition that platform's shared cache.

        ``allocator`` selects the partition allocator of a multicore
        co-design (see :mod:`repro.multicore.allocators`).  ``n_apps``
        replicates the case-study workload up to that many applications
        (round-robin copies with re-normalized weights) so many-core
        runs — where ``n_cores`` must not exceed the application
        count — have enough work to partition.

        ``dynamic`` attaches a
        :class:`~repro.sim.profiles.DynamicProfile`: after the static
        search the feedback-scheduling simulation runs on the same warm
        engine and the report carries its
        :class:`~repro.sim.report.SimReport` (the CLI's ``simulate``
        command; single-core only).
        """
        # Imported lazily: repro.apps builds on repro.sched.
        from ..apps import build_case_study

        case = build_case_study(platform=platform)
        apps = case.apps
        if n_apps is not None:
            # Lazily imported: repro.multicore builds on repro.sched.
            from ..multicore.allocators import replicate_apps

            apps = replicate_apps(apps, n_apps)
        scenario = Scenario(
            name=name,
            apps=apps,
            clock=case.clock,
            design_options=design_options,
            strategy=strategy,
            starts=tuple(starts) if starts else None,
            n_starts=n_starts,
            seed=seed,
            n_cores=n_cores,
            options=options,
            max_count_per_core=max_count_per_core,
            platform=platform,
            shared_cache=shared_cache,
            allocator=allocator,
            allocator_options=allocator_options,
            dynamic=dynamic,
        )
        return cls([scenario], engine_options=engine_options, run_dir=run_dir)

    @classmethod
    def from_suite(
        cls,
        suite_size: int,
        seed: int = 2018,
        strategy: str | None = None,
        design_options: DesignOptions | None = None,
        n_apps_choices: tuple[int, ...] = (2, 3),
        n_cores: int = 1,
        platform: Platform | None = None,
        jitter_platform: bool = False,
        shared_cache: bool = False,
        allocator: str | None = None,
        allocator_options: object | None = None,
        dynamic: bool = False,
        engine_options: EngineOptions | None = None,
        run_dir: str | Path | None = None,
    ) -> "Study":
        """Study over a deterministic synthesized workload suite.

        ``platform``/``jitter_platform``/``shared_cache`` open the
        platform axis of the synthesis — see
        :func:`~repro.sched.engine.batch.synthesize_scenarios`.
        ``allocator`` selects the partition allocator of the multicore
        scenarios (ignored by scenarios the synthesis clamps down to a
        single core).  ``dynamic=True`` attaches a seeded random
        :class:`~repro.sim.profiles.DynamicProfile` to every scenario,
        so each static search is followed by a feedback-scheduling
        simulation on the same warm engine (single-core suites only).
        """
        scenarios = synthesize_scenarios(
            suite_size,
            seed=seed,
            strategy=strategy,
            design_options=design_options,
            n_apps_choices=n_apps_choices,
            n_cores=n_cores,
            platform=platform,
            jitter_platform=jitter_platform,
            shared_cache=shared_cache,
            allocator=allocator,
            allocator_options=allocator_options,
            dynamic=dynamic,
        )
        return cls(scenarios, engine_options=engine_options, run_dir=run_dir)

    @classmethod
    def from_scenarios(
        cls,
        scenarios: list[Scenario],
        engine_options: EngineOptions | None = None,
        run_dir: str | Path | None = None,
    ) -> "Study":
        """Study over an explicit scenario list."""
        return cls(scenarios, engine_options=engine_options, run_dir=run_dir)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def report_path(self, scenario: Scenario) -> Path | None:
        """Where one scenario's report persists (``None`` without a
        run directory).

        The filename carries every run input that is not already in the
        name/strategy/seed/cores prefix — starts, strategy options,
        ``n_starts``, the per-core cap, the platform, the shared-cache
        flag and the partition allocator (name plus its options) — as a
        short digest, so differently-configured
        runs of one scenario never collide on (and thrash) a single
        artifact.  The *raw* scenario name is part of the digest too:
        the human-readable prefix is slugged for the filesystem, so
        near-identical names (``"synth 000"`` vs ``"synth_000"``)
        collapse to one slug and would otherwise share a path.
        """
        if self.run_dir is None:
            return None
        spec_fields: list = [
            scenario.name,
            [list(s.counts) for s in scenario.starts]
            if scenario.starts
            else None,
            _json_safe(options_as_dict(scenario.options)),
            scenario.n_starts,
            scenario.max_count_per_core,
            scenario_platform_fingerprint(scenario),
            scenario.shared_cache,
            scenario.allocator,
            _json_safe(options_as_dict(scenario.allocator_options)),
        ]
        if scenario.dynamic is not None:
            # Appended only for dynamic scenarios, so every static
            # artifact written before simulations existed keeps its
            # historical digest (and stays resumable).
            spec_fields.append(scenario.dynamic.to_dict())
        spec = json.dumps(spec_fields, sort_keys=True)
        tag = hashlib.sha256(spec.encode()).hexdigest()[:8]
        filename = (
            f"{_slug(scenario.name)}--{_slug(scenario.strategy)}"
            f"--seed{scenario.seed}--c{scenario.n_cores}--{tag}.json"
        )
        return self.run_dir / filename

    def _resumable(self, scenario: Scenario, report: RunReport) -> bool:
        """Whether a persisted report answers this exact scenario run.

        Every search input is compared — scenario name, problem digest,
        strategy and its options, seed, starts, core count, per-core
        cap, platform, shared-cache flag, and the partition allocator
        with its options — so a stale artifact can never shadow a
        differently-configured run.
        """
        return (
            report.schema_version == RunReport.schema_version
            and report.scenario == scenario.name
            and report.problem == scenario_digest(scenario)
            and report.strategy == scenario.strategy
            and report.options == _json_safe(options_as_dict(scenario.options))
            and report.seed == scenario.seed
            and report.n_starts == scenario.n_starts
            and report.n_cores == scenario.n_cores
            and report.max_count_per_core == scenario.max_count_per_core
            and report.platform == scenario_platform_fingerprint(scenario)
            and report.shared_cache == scenario.shared_cache
            and report.allocator == scenario.allocator
            and report.allocator_options
            == _json_safe(options_as_dict(scenario.allocator_options))
            and report.dynamic
            == (
                scenario.dynamic.to_dict()
                if scenario.dynamic is not None
                else None
            )
            and report.starts
            == (
                [list(s.counts) for s in scenario.starts]
                if scenario.starts
                else None
            )
        )

    def _load_existing(self, scenario: Scenario) -> RunReport | None:
        path = self.report_path(scenario)
        if path is None or not path.exists():
            return None
        try:
            report = RunReport.from_json(path.read_text())
        except (ValueError, KeyError, TypeError):
            return None  # corrupt or foreign artifact: recompute
        return report if self._resumable(scenario, report) else None

    def _run_one(
        self,
        scenario: Scenario,
        resume: bool,
        on_engine_event=None,
        on_sim_event=None,
    ) -> tuple[RunReport, bool, float]:
        """Run (or resume) one scenario.

        Returns ``(report, resumed, wall_time)``; ``on_engine_event``
        receives the engine's progress events while the search runs,
        ``on_sim_event`` the runtime events of a dynamic scenario's
        feedback-scheduling simulation.
        """
        report = self._load_existing(scenario) if resume else None
        if report is not None:
            return report, True, 0.0
        started = time.perf_counter()
        outcome = run_scenario(
            scenario,
            self.engine_options,
            on_event=on_engine_event,
            on_sim_event=on_sim_event,
        )
        wall_time = time.perf_counter() - started
        report = RunReport.from_outcome(scenario, outcome)
        path = self.report_path(scenario)
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(report.to_json() + "\n")
        return report, False, wall_time

    def _started_event(self, index: int, scenario: Scenario) -> ScenarioStarted:
        return ScenarioStarted(
            index=index,
            n_scenarios=len(self.scenarios),
            scenario=scenario.name,
            strategy=scenario.strategy,
            n_cores=scenario.n_cores,
        )

    def _ended_event(
        self,
        index: int,
        scenario: Scenario,
        report: RunReport,
        resumed: bool,
        wall_time: float,
        n_computed_total: int,
        search_seconds_total: float,
    ) -> StudyEvent:
        common = dict(
            index=index, n_scenarios=len(self.scenarios), scenario=scenario.name
        )
        if resumed:
            return ScenarioResumed(report=report, **common)
        return ScenarioFinished(
            report=report,
            wall_time=wall_time,
            n_computed_total=n_computed_total,
            throughput=(
                n_computed_total / search_seconds_total
                if search_seconds_total > 0
                else None
            ),
            **common,
        )

    def _iter_events(self, resume: bool, live_emit=None) -> Iterator[StudyEvent]:
        """The one event-producing driver behind :meth:`run` / :meth:`stream`.

        Yields started / progress / resumed / finished events per
        scenario.  With ``live_emit``, engine progress is *pushed* to
        it while the search runs (and not yielded afterwards); without
        it, engine events are buffered and yielded as
        :class:`ScenarioProgress` once the scenario ends — a generator
        cannot yield from inside the engine's callback.
        """
        n_computed_total = 0
        search_seconds_total = 0.0
        for index, scenario in enumerate(self.scenarios):
            yield self._started_event(index, scenario)
            common = dict(
                index=index,
                n_scenarios=len(self.scenarios),
                scenario=scenario.name,
            )
            buffered: list = []
            buffered_sim: list = []
            if live_emit is not None:
                engine_cb = lambda event, common=common: live_emit(
                    ScenarioProgress(engine=event, **common)
                )
                sim_cb = lambda event, common=common: live_emit(
                    SimulationProgress(sim=event, **common)
                )
            else:
                engine_cb = buffered.append
                sim_cb = buffered_sim.append
            report, resumed, wall_time = self._run_one(
                scenario, resume, on_engine_event=engine_cb, on_sim_event=sim_cb
            )
            for engine_event in buffered:
                yield ScenarioProgress(engine=engine_event, **common)
            for sim_event in buffered_sim:
                yield SimulationProgress(sim=sim_event, **common)
            if not resumed and report.sim is not None:
                sim_report = SimReport.from_dict(report.sim)
                sim_finished = SimulationFinished(
                    report=sim_report,
                    mean_cost=sim_report.mean_cost,
                    n_adaptations=sim_report.n_adaptations,
                    **common,
                )
                if live_emit is not None:
                    live_emit(sim_finished)
                else:
                    yield sim_finished
            if not resumed:
                n_computed_total += int(
                    report.engine_stats.get("n_computed", 0)
                )
                search_seconds_total += wall_time
            yield self._ended_event(
                index,
                scenario,
                report,
                resumed,
                wall_time,
                n_computed_total,
                search_seconds_total,
            )

    def run(self, resume: bool = True, on_event=None) -> list[RunReport]:
        """Run every scenario; one :class:`RunReport` per scenario.

        With a run directory, reports persist as JSON after each
        scenario, and (``resume=True``) scenarios whose persisted
        report matches — same problem digest, strategy, seed, starts
        and core count — are served from disk without re-searching.

        ``on_event`` receives the study's typed progress events
        (:mod:`repro.study.events`) *live*: scenario started /
        resumed / finished, plus a :class:`ScenarioProgress` wrapper
        around every engine batch event, delivered while the search is
        still running.  Prefer :meth:`stream` for a pull-style
        iterator over the same events.
        """
        emit = on_event if on_event is not None else (lambda event: None)
        reports: list[RunReport] = []
        for event in self._iter_events(resume, live_emit=on_event):
            # Engine progress already went out live through live_emit;
            # the driver yields only the started/resumed/finished ones.
            emit(event)
            if isinstance(event, (ScenarioResumed, ScenarioFinished)):
                reports.append(event.report)
        return reports

    def stream(self, resume: bool = True) -> Iterator[StudyEvent]:
        """Iterate the study's progress events, running it lazily.

        Yields :class:`ScenarioStarted` *before* each scenario runs;
        the scenario's engine events are buffered while its search
        executes and yielded as :class:`ScenarioProgress` right after
        it, followed by :class:`ScenarioResumed` or
        :class:`ScenarioFinished` carrying the report.  Collect the
        reports from those terminal events::

            reports = [e.report for e in study.stream()
                       if isinstance(e, (ScenarioResumed, ScenarioFinished))]

        For strictly-live engine events use :meth:`run` with
        ``on_event``.
        """
        return self._iter_events(resume)
