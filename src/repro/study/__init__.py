"""Unified study API: one front door for every search run.

:class:`Study` builds a run — from the paper case study
(:meth:`Study.from_case_study`), a synthesized suite
(:meth:`Study.from_suite`) or an explicit scenario list
(:meth:`Study.from_scenarios`) — and drives single-core, batch and
multicore scenarios through one code path: the strategy registry
(:mod:`repro.sched.strategies`) over the batch search engine
(:mod:`repro.sched.engine`).  Every scenario yields a
:class:`RunReport`, a JSON round-trippable artifact that persists under
a run directory for resumable, cross-commit-comparable sweeps.

    >>> from repro.study import Study
    >>> reports = Study.from_case_study(strategy="hybrid",
    ...                                 run_dir=".runs").run()
    >>> reports[0].best_schedule, reports[0].overall
    ([3, 2, 3], 0.195...)

Runs are observable while they execute — ``Study.run(on_event=...)``
pushes the typed :mod:`~repro.study.events` (scenario
started/resumed/finished plus engine batch progress) to a callback,
and ``Study.stream()`` yields the same events as an iterator::

    >>> from repro.study.events import ScenarioFinished
    >>> def on_event(event):
    ...     if isinstance(event, ScenarioFinished):
    ...         print(event.scenario, f"{event.throughput:.1f} eval/s")
    >>> reports = Study.from_suite(8, strategy="hybrid").run(on_event=on_event)
"""

from .events import (
    ScenarioFinished,
    ScenarioProgress,
    ScenarioResumed,
    ScenarioStarted,
    SimulationFinished,
    SimulationProgress,
    StudyEvent,
)
from .report import RunReport, scenario_digest
from .study import Study

__all__ = [
    "RunReport",
    "ScenarioFinished",
    "ScenarioProgress",
    "ScenarioResumed",
    "ScenarioStarted",
    "SimulationFinished",
    "SimulationProgress",
    "Study",
    "StudyEvent",
    "scenario_digest",
]
