"""Time-unit helpers shared across the cache, WCET and control layers.

The cache/WCET layer counts *clock cycles* (exact integers); the control
layer works in *seconds* (floats).  The conversion pivot is the processor
clock frequency.  Keeping the conversion in one place avoids the classic
off-by-1e6 microsecond bugs when wiring analysis results into controller
design.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ConfigurationError

#: Convenient multipliers for expressing literals in seconds.
MICROSECOND = 1e-6
MILLISECOND = 1e-3


@dataclass(frozen=True)
class Clock:
    """A processor clock used to convert cycle counts to wall-clock time.

    Parameters
    ----------
    frequency_hz:
        Clock frequency in hertz.  The paper's case study uses 20 MHz.
    """

    frequency_hz: float = 20e6

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError(
                f"clock frequency must be positive, got {self.frequency_hz}"
            )

    @property
    def cycle_time(self) -> float:
        """Duration of one clock cycle in seconds."""
        return 1.0 / self.frequency_hz

    def cycles_to_seconds(self, cycles: int | float) -> float:
        """Convert a cycle count to seconds."""
        return cycles / self.frequency_hz

    def cycles_to_us(self, cycles: int | float) -> float:
        """Convert a cycle count to microseconds."""
        return cycles / self.frequency_hz * 1e6

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert a duration in seconds to (possibly fractional) cycles."""
        return seconds * self.frequency_hz


def us(value: float) -> float:
    """Express ``value`` microseconds in seconds."""
    return value * MICROSECOND


def ms(value: float) -> float:
    """Express ``value`` milliseconds in seconds."""
    return value * MILLISECOND
