"""The control-application bundle used throughout the co-design."""

from __future__ import annotations

from dataclasses import dataclass

from ..control.design import TrackingSpec
from ..control.lti import LtiPlant
from ..errors import ConfigurationError
from ..program.program import Program
from ..wcet.results import TaskWcets


@dataclass(frozen=True)
class ControlApplication:
    """One feedback-control application of the case study.

    Bundles everything the two-stage framework needs to know about an
    application: the plant it controls, the tracking scenario and
    constraints (Table II), its weight in the overall performance index
    (eq. (2)), its maximum allowed idle time (eq. (4)) and the WCET
    triple of its control program (Table I).

    Parameters
    ----------
    name:
        Application identifier (``C1``, ``C2``, ...).
    plant:
        Continuous-time plant model.
    spec:
        Tracking scenario: reference step, saturation bound and settling
        deadline ``s_max`` (the normalization reference ``s0``).
    weight:
        Weight ``w_i`` in the overall performance (must sum to 1 across
        an application set; checked by the evaluator).
    max_idle:
        Maximum allowed idle time ``t_idle`` in seconds.
    wcets:
        Cold/warm WCET pair of the application's control program.
    program:
        The analysed instruction program (optional; kept for trace-level
        validation experiments).
    """

    name: str
    plant: LtiPlant
    spec: TrackingSpec
    weight: float
    max_idle: float
    wcets: TaskWcets
    program: Program | None = None  # lint: fingerprint-exempt(trace-validation aid; evaluation never reads it)

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(
                f"application {self.name!r}: weight must be positive, got {self.weight}"
            )
        if self.max_idle <= 0:
            raise ConfigurationError(
                f"application {self.name!r}: max_idle must be positive, got {self.max_idle}"
            )
        if self.spec.deadline <= 0:
            raise ConfigurationError(
                f"application {self.name!r}: settling deadline must be positive"
            )
