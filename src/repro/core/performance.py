"""The paper's control-performance index (Section II-A, eq. (2)).

For application ``i`` with worst-case settling time ``s_i`` and
normalization reference ``s0_i`` (its settling deadline), the control
performance is ``P_i = 1 - s_i / s0_i``; the overall performance is the
weighted sum ``P_all = Σ w_i P_i`` with ``Σ w_i = 1``.  Feasibility
(eq. (3)) requires ``P_i >= 0`` for every application.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

#: Tolerance for the "weights sum to one" check.
WEIGHT_TOLERANCE = 1e-9


def performance_index(settling: float, deadline: float) -> float:
    """Single-application performance ``P_i = 1 - s_i / s0_i``.

    An unsettled response (``settling = inf``) maps to ``-inf`` so that
    any comparison and the feasibility check (eq. (3)) behave sensibly.
    """
    if deadline <= 0:
        raise ConfigurationError(f"deadline must be positive, got {deadline}")
    if not math.isfinite(settling):
        return -math.inf
    return 1.0 - settling / deadline


def check_weights(weights: list[float]) -> None:
    """Validate that the weights are positive and sum to one."""
    if not weights:
        raise ConfigurationError("need at least one weight")
    if any(w <= 0 for w in weights):
        raise ConfigurationError(f"weights must be positive, got {weights}")
    total = sum(weights)
    if abs(total - 1.0) > WEIGHT_TOLERANCE:
        raise ConfigurationError(f"weights must sum to 1, got {total}")


def overall_performance(weights: list[float], performances: list[float]) -> float:
    """Weighted overall performance ``P_all`` (eq. (2))."""
    if len(weights) != len(performances):
        raise ConfigurationError(
            f"got {len(weights)} weights but {len(performances)} performances"
        )
    check_weights(weights)
    return float(sum(w * p for w, p in zip(weights, performances)))
