"""Co-design facade: applications, performance index and reporting.

This package ties the substrates together into the paper's two-stage
framework (Section I): given a set of control applications sharing a
cached microcontroller,

1. for any candidate schedule, a holistic controller design maximizes
   each application's control performance under the induced timing;
2. a schedule-space search maximizes the weighted overall performance.

:class:`~repro.core.codesign.CodesignProblem` is the main entry point.
"""

from .application import ControlApplication
from .performance import overall_performance, performance_index
from .codesign import CodesignProblem, CodesignResult
from .report import render_table

__all__ = [
    "CodesignProblem",
    "CodesignResult",
    "ControlApplication",
    "overall_performance",
    "performance_index",
    "render_table",
]
