"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report;
this module keeps the formatting in one place (no external dependency —
the environment is offline).
"""

from __future__ import annotations

from ..errors import ConfigurationError


def render_table(
    headers: list[str],
    rows: list[list[str]],
    title: str | None = None,
) -> str:
    """Render an ASCII table with one separator under the header row."""
    if not headers:
        raise ConfigurationError("table needs at least one column")
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
    cells = [headers] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def format_row(row: list[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(row, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in cells[1:])
    return "\n".join(lines)


def format_seconds_ms(value: float, digits: int = 1) -> str:
    """Format a duration in milliseconds (``inf`` stays symbolic)."""
    if value != value or value == float("inf"):  # NaN or inf
        return "unsettled"
    return f"{value * 1e3:.{digits}f} ms"


def format_percent(value: float, digits: int = 0) -> str:
    """Format a ratio as a percentage."""
    return f"{value * 100:.{digits}f}%"
