"""Two-stage co-design facade (the paper's overall framework).

:class:`CodesignProblem` bundles an application set with a clock and
design options, exposes schedule evaluation (stage 1: holistic
controller design per schedule) and schedule optimization (stage 2: any
registered search strategy — see :mod:`repro.sched.strategies`), and
provides the Table-III style comparison between two schedules.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from pathlib import Path

from ..control.design import DesignOptions
from ..sched.annealing import AnnealingOptions
from ..sched.engine import SearchEngine
from ..sched.evaluator import ScheduleEvaluation, ScheduleEvaluator
from ..sched.feasibility import enumerate_idle_feasible, idle_feasible
from ..sched.hybrid import HybridOptions
from ..sched.results import SearchResult
from ..sched.schedule import PeriodicSchedule
from ..sched.strategies import StrategySpec, get_strategy
from ..units import Clock
from .application import ControlApplication


@dataclass
class CodesignResult:
    """Outcome of a schedule optimization."""

    strategy: str
    search: SearchResult

    @property
    def method(self) -> str:
        """Deprecated alias of :attr:`strategy`."""
        return self.strategy

    @property
    def best_schedule(self) -> PeriodicSchedule:
        """The optimal schedule found."""
        return self.search.best_schedule

    @property
    def best_overall(self) -> float:
        """Overall control performance of the optimum."""
        return self.search.best_value


@dataclass
class AppComparison:
    """Per-application row of a Table-III style comparison."""

    app_name: str
    settling_baseline: float
    settling_candidate: float

    @property
    def improvement(self) -> float:
        """Relative settling-time reduction (the paper's "control
        performance improvement")."""
        if self.settling_baseline <= 0:
            return 0.0
        return 1.0 - self.settling_candidate / self.settling_baseline


class CodesignProblem:
    """An application set sharing one cached processor.

    ``workers`` and ``cache_dir`` configure the search engine: with
    ``workers >= 2`` candidate schedules are evaluated in parallel
    worker processes, and with a ``cache_dir`` every evaluation persists
    to disk so repeated runs warm-start (see
    :mod:`repro.sched.engine`).  The defaults keep everything serial and
    in-memory, exactly as before.  ``platform`` declares the
    :class:`~repro.platform.Platform` the applications' WCETs were
    analyzed on; it becomes part of the persistent-cache keys.
    """

    def __init__(
        self,
        apps: list[ControlApplication],
        clock: Clock,
        design_options: DesignOptions | None = None,
        workers: int = 0,
        cache_dir: str | Path | None = None,
        platform=None,
        eval_backend: str = "vectorized",
    ) -> None:
        self.apps = list(apps)
        self.clock = clock
        self.platform = platform
        self.evaluator = ScheduleEvaluator(
            apps, clock, design_options, eval_backend=eval_backend
        )
        self.engine = SearchEngine(
            self.evaluator, workers=workers, cache_dir=cache_dir, platform=platform
        )
        self._space: list[PeriodicSchedule] | None = None

    def close(self) -> None:
        """Release engine resources (worker pool, cache connection)."""
        self.engine.close()

    def __enter__(self) -> "CodesignProblem":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Stage 1: evaluation
    # ------------------------------------------------------------------
    def evaluate(self, schedule: PeriodicSchedule) -> ScheduleEvaluation:
        """Overall control performance of one schedule (cached)."""
        return self.engine.evaluate(schedule)

    def idle_feasible(self, schedule: PeriodicSchedule) -> bool:
        """Max-idle-time constraint, eq. (4)."""
        return idle_feasible(schedule, self.apps, self.clock)

    def schedule_space(self) -> list[PeriodicSchedule]:
        """The complete idle-feasible schedule space (cached)."""
        if self._space is None:
            self._space = enumerate_idle_feasible(self.apps, self.clock)
        return self._space

    # ------------------------------------------------------------------
    # Stage 2: optimization
    # ------------------------------------------------------------------
    def optimize(
        self,
        strategy: str | None = None,
        starts: list[PeriodicSchedule] | None = None,
        n_starts: int = 2,
        seed: int = 2018,
        options: object | None = None,
        hybrid_options: HybridOptions | None = None,
        annealing_options: AnnealingOptions | None = None,
        method: str | None = None,
    ) -> CodesignResult:
        """Find an optimal schedule with a registered search strategy.

        ``strategy`` names any strategy in the registry
        (:func:`repro.sched.strategies.available_strategies`); the
        default is ``"hybrid"``, the paper's algorithm.  ``starts``
        overrides the ``n_starts`` seeded random initializations, and
        ``options`` carries the strategy-specific options dataclass.
        Unknown strategy names raise
        :class:`~repro.errors.ConfigurationError` naming the registered
        strategies.

        ``method=`` is the deprecated spelling of ``strategy=``;
        ``hybrid_options=`` / ``annealing_options=`` are older aliases
        of ``options=`` and are consulted only when their type matches
        the chosen strategy.
        """
        if method is not None:
            warnings.warn(
                "CodesignProblem.optimize(method=...) is deprecated; "
                "use strategy=...",
                DeprecationWarning,
                stacklevel=2,
            )
            if strategy is None:
                strategy = method
        strat = get_strategy(strategy if strategy is not None else "hybrid")
        if options is None:
            for legacy in (hybrid_options, annealing_options):
                if legacy is not None and isinstance(legacy, strat.options_type):
                    options = legacy
                    break
        spec = StrategySpec(
            starts=tuple(starts) if starts else None,
            n_starts=n_starts,
            seed=seed,
            options=options,
            feasible=self.idle_feasible,
        )
        search = strat.run(self.engine, self.schedule_space(), spec)
        return CodesignResult(strategy=strat.name, search=search)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def compare(
        self, baseline: PeriodicSchedule, candidate: PeriodicSchedule
    ) -> list[AppComparison]:
        """Per-application settling comparison (the paper's Table III)."""
        base_eval = self.evaluate(baseline)
        cand_eval = self.evaluate(candidate)
        return [
            AppComparison(
                app_name=b.app_name,
                settling_baseline=b.settling,
                settling_candidate=c.settling,
            )
            for b, c in zip(base_eval.apps, cand_eval.apps)
        ]
