"""Calibrate plant constants so the case study lands at the paper's
operating point.

The paper does not publish plant matrices, but Table III pins down the
operating point: under round-robin (1,1,1) the applications settle just
inside their deadlines and the cache-aware (3,2,3) schedule improves
settling by 13-17 %.  All three surrogates are lightly damped
second-order plants (see repro.apps.resonant); this script

* ``check``  — evaluates the currently configured constants under both
  schedules with an honest (multi-restart, big-swarm) budget;
* ``sweep``  — sweeps (natural frequency, damping, equilibrium-input
  headroom) per application so new constants can be chosen.

Run:  python tools/calibrate_plants.py [check|sweep]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.apps import build_case_study
from repro.apps.resonant import resonant_plant
from repro.control.design import DesignOptions, design_controller
from repro.control.pso import PsoOptions
from repro.sched import PeriodicSchedule, derive_timing

#: Honest budget: multiple restarts, larger swarms than the default.
HONEST = DesignOptions(
    restarts=5,
    stage_a=PsoOptions(24, 30),
    stage_b=PsoOptions(32, 40),
)

#: Output gains / references per application (fixed by the scenarios).
SCENARIOS = {
    "C1": dict(dc=1.0, r=0.2),
    "C2": dict(dc=550.0, r=110.0),
    "C3": dict(dc=6000.0, r=2000.0),
}


def timings():
    case = build_case_study()
    wcets = [app.wcets for app in case.apps]
    rr = derive_timing(PeriodicSchedule.of(1, 1, 1), wcets, case.clock)
    opt = derive_timing(PeriodicSchedule.of(3, 2, 3), wcets, case.clock)
    return case, rr, opt


def settle_pair(plant, spec, rr_timing, opt_timing, app_index, options=HONEST):
    results = []
    for timing in (rr_timing, opt_timing):
        app_timing = timing.for_app(app_index)
        design = design_controller(
            plant, list(app_timing.periods), list(app_timing.delays), spec, options
        )
        results.append(design)
    return results


def check() -> None:
    """Evaluate the currently-configured constants on both schedules."""
    case, rr_timing, opt_timing = timings()
    for i, app in enumerate(case.apps):
        rr, opt = settle_pair(app.plant, app.spec, rr_timing, opt_timing, i)
        improvement = (
            (1 - opt.settling / rr.settling) * 100
            if np.isfinite(rr.settling) and np.isfinite(opt.settling)
            else float("nan")
        )
        print(
            f"{app.name}: RR {rr.settling * 1e3:7.2f} ms (u {rr.u_peak:5.2f})  "
            f"OPT {opt.settling * 1e3:7.2f} ms (u {opt.u_peak:5.2f})  "
            f"improvement {improvement:5.1f}%  "
            f"deadline {app.spec.deadline * 1e3:.1f} ms"
        )


def sweep() -> None:
    """Sweep (wn, zeta, headroom) per application around the defaults."""
    case, rr_timing, opt_timing = timings()
    grids = {
        "C1": [(180, 0.15, 4.0), (220, 0.15, 4.0), (260, 0.15, 4.0),
               (220, 0.10, 4.0), (220, 0.20, 4.0), (220, 0.15, 6.0)],
        "C2": [(240, 0.08, 6.0), (280, 0.08, 6.0), (320, 0.08, 6.0),
               (280, 0.05, 6.0), (280, 0.12, 6.0), (280, 0.08, 8.0)],
        "C3": [(260, 0.10, 5.0), (300, 0.10, 5.0), (340, 0.10, 5.0),
               (300, 0.06, 5.0), (300, 0.15, 5.0), (300, 0.10, 7.0)],
    }
    for i, app in enumerate(case.apps):
        scenario = SCENARIOS[app.name]
        print(f"== {app.name} (deadline {app.spec.deadline * 1e3:.1f} ms)")
        for wn, zeta, headroom in grids[app.name]:
            x1_eq = scenario["r"] / scenario["dc"]
            input_gain = wn * wn * x1_eq / headroom
            plant = resonant_plant(app.name, wn, zeta, scenario["dc"], input_gain)
            rr, opt = settle_pair(plant, app.spec, rr_timing, opt_timing, i)
            improvement = (1 - opt.settling / rr.settling) * 100
            print(
                f"  wn={wn} zeta={zeta} u_eq={headroom}V: "
                f"RR {rr.settling * 1e3:7.2f} ms  OPT {opt.settling * 1e3:7.2f} ms  "
                f"improvement {improvement:5.1f}%"
            )


if __name__ == "__main__":
    mode = sys.argv[1] if len(sys.argv) > 1 else "check"
    if mode == "sweep":
        sweep()
    else:
        check()
