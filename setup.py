"""Legacy setuptools shim.

All metadata lives in ``pyproject.toml``; with network access
``pip install -e .`` works through the PEP 660 path.  The offline
reproduction environment lacks the ``wheel`` package, so there use
``python setup.py develop`` (or just ``PYTHONPATH=src``) instead.
"""

from setuptools import setup

setup()
